//! Finite-implication reasoning: the cardinality-cycle ("counting") rule.
//!
//! Section 4 (Theorem 4.4) and Section 6 (Theorem 6.1) of the paper rest on
//! a counting argument that is valid **only over finite databases**: INDs
//! give `|r[X]| ≤ |s[Y]|`, FDs give `|r[X∪Y]| ≤ |r[X]|`, and projections
//! give `|r[X']| ≤ |r[X]|` for `X' ⊆ X`; when these inequalities close a
//! cycle, all the cardinalities in the cycle are equal, and equality turns
//!
//! * a finite inclusion `r[X] ⊆ s[Y]` with `|r[X]| = |s[Y]|` into the
//!   **reversed IND** `S[Y] ⊆ R[X]`, and
//! * `|r[S₂]| = |r[S₁]|` for `S₁ ⊆ S₂` into the **FD** `R: S₁ → S₂`
//!   (the projection `r[S₂] → r[S₁]` is then a bijection).
//!
//! This is exactly how the paper proves `Σ ⊨_fin σ` in Theorem 4.4 (both
//! parts) and Theorem 6.1. [`FiniteEngine`] alternates this rule with the
//! `Saturator` (see [`crate::interact`]) to a fixpoint, yielding a sound
//! finite-implication engine that is complete on the paper's families
//! (tests in `depkit-axiom` verify this) though necessarily incomplete in
//! general — no k-ary axiomatization exists (Theorem 6.1) and the problem
//! is undecidable.

use crate::interact::Saturator;
use depkit_core::attr::{Attr, AttrSeq};
use depkit_core::dependency::{Dependency, Fd, Ind};
use depkit_core::schema::RelName;
use std::collections::{BTreeMap, BTreeSet};

/// A node of the cardinality graph: a relation name together with a
/// *set* of attributes (cardinality of a projection is order-insensitive).
type Node = (RelName, BTreeSet<Attr>);

/// Apply the counting rule once: from the given FDs and INDs, derive
/// reversed INDs and bijection FDs along cardinality cycles. Returns only
/// dependencies that are not already present.
pub fn counting_rule(fds: &BTreeSet<Fd>, inds: &BTreeSet<Ind>) -> Vec<Dependency> {
    // 1. Materialize nodes.
    let mut nodes: Vec<Node> = Vec::new();
    let mut index: BTreeMap<Node, usize> = BTreeMap::new();
    let intern = |n: Node, nodes: &mut Vec<Node>, index: &mut BTreeMap<Node, usize>| {
        if let Some(&i) = index.get(&n) {
            i
        } else {
            let i = nodes.len();
            nodes.push(n.clone());
            index.insert(n, i);
            i
        }
    };
    let set_of = |s: &AttrSeq| -> BTreeSet<Attr> { s.attrs().iter().cloned().collect() };

    // (edge u -> v means |u| <= |v|)
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut ind_edges: Vec<(usize, usize, Ind)> = Vec::new();

    for ind in inds {
        let l = intern(
            (ind.lhs_rel.clone(), set_of(&ind.lhs_attrs)),
            &mut nodes,
            &mut index,
        );
        let r = intern(
            (ind.rhs_rel.clone(), set_of(&ind.rhs_attrs)),
            &mut nodes,
            &mut index,
        );
        edges.push((l, r));
        ind_edges.push((l, r, ind.clone()));
    }
    for fd in fds {
        let x = set_of(&fd.lhs);
        let mut xy = x.clone();
        xy.extend(fd.rhs.attrs().iter().cloned());
        let nx = intern((fd.rel.clone(), x), &mut nodes, &mut index);
        let nxy = intern((fd.rel.clone(), xy), &mut nodes, &mut index);
        // FD X -> Y: |r[X ∪ Y]| <= |r[X]|.
        edges.push((nxy, nx));
    }
    // Structural edges between same-relation nodes with subset relation:
    // S1 ⊆ S2 gives |r[S1]| <= |r[S2]|.
    for i in 0..nodes.len() {
        for j in 0..nodes.len() {
            if i != j && nodes[i].0 == nodes[j].0 && nodes[i].1.is_subset(&nodes[j].1) {
                edges.push((i, j));
            }
        }
    }

    // 2. Strongly connected components (iterative Tarjan).
    let scc = tarjan(nodes.len(), &edges);

    // 3. Derivations.
    let mut out: Vec<Dependency> = Vec::new();
    for (l, r, ind) in &ind_edges {
        if scc[*l] == scc[*r] {
            let rev = ind.reversed();
            if !rev.is_trivial() && !inds.contains(&rev) {
                out.push(rev.into());
            }
        }
    }
    for i in 0..nodes.len() {
        for j in 0..nodes.len() {
            if i != j
                && scc[i] == scc[j]
                && nodes[i].0 == nodes[j].0
                && nodes[i].1.is_subset(&nodes[j].1)
            {
                // |r[S2]| = |r[S1]| with S1 ⊆ S2: the FD S1 -> S2 \ S1.
                let rhs: Vec<Attr> = nodes[j].1.difference(&nodes[i].1).cloned().collect();
                if rhs.is_empty() {
                    continue;
                }
                let fd = Fd::new(
                    nodes[i].0.clone(),
                    AttrSeq::new(nodes[i].1.iter().cloned().collect()).expect("set is distinct"),
                    AttrSeq::new(rhs).expect("set difference is distinct"),
                );
                if !fd.is_trivial() && !fds.contains(&fd) {
                    out.push(fd.into());
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

fn tarjan(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(u, v) in edges {
        adj[u].push(v);
    }
    let mut index_counter = 0usize;
    let mut scc_counter = 0usize;
    let mut indices: Vec<Option<usize>> = vec![None; n];
    let mut lowlink: Vec<usize> = vec![0; n];
    let mut on_stack: Vec<bool> = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc: Vec<usize> = vec![usize::MAX; n];

    // Iterative DFS to avoid recursion limits on large graphs.
    #[derive(Clone)]
    struct Frame {
        v: usize,
        next_child: usize,
    }
    for root in 0..n {
        if indices[root].is_some() {
            continue;
        }
        let mut call_stack = vec![Frame {
            v: root,
            next_child: 0,
        }];
        indices[root] = Some(index_counter);
        lowlink[root] = index_counter;
        index_counter += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(frame) = call_stack.last().cloned() {
            let v = frame.v;
            if frame.next_child < adj[v].len() {
                let w = adj[v][frame.next_child];
                call_stack.last_mut().expect("nonempty").next_child += 1;
                if indices[w].is_none() {
                    indices[w] = Some(index_counter);
                    lowlink[w] = index_counter;
                    index_counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push(Frame {
                        v: w,
                        next_child: 0,
                    });
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(indices[w].expect("visited"));
                }
            } else {
                call_stack.pop();
                if let Some(parent) = call_stack.last() {
                    lowlink[parent.v] = lowlink[parent.v].min(lowlink[v]);
                }
                if lowlink[v] == indices[v].expect("visited") {
                    loop {
                        let w = stack.pop().expect("stack nonempty");
                        on_stack[w] = false;
                        scc[w] = scc_counter;
                        if w == v {
                            break;
                        }
                    }
                    scc_counter += 1;
                }
            }
        }
    }
    scc
}

/// A sound engine for **finite** implication of FDs, INDs, and RDs:
/// alternates the interaction saturator with the counting rule to a
/// fixpoint.
#[derive(Debug, Clone)]
pub struct FiniteEngine {
    sat: Saturator,
}

impl FiniteEngine {
    /// Build and saturate the engine.
    pub fn new(deps: &[Dependency]) -> Self {
        let mut sat = Saturator::new(deps);
        loop {
            sat.saturate();
            let derived = counting_rule(sat.fds(), sat.inds());
            let mut changed = false;
            for d in &derived {
                changed |= sat.add(d);
            }
            if !changed || sat.truncated() {
                break;
            }
        }
        FiniteEngine { sat }
    }

    /// Whether the engine derives `Σ ⊨_fin dep`. Sound; incomplete in
    /// general (the finite implication problem for FDs + INDs is
    /// undecidable).
    pub fn implies(&self, dep: &Dependency) -> bool {
        self.sat.implies(dep)
    }

    /// Whether saturation hit a resource cap.
    pub fn truncated(&self) -> bool {
        self.sat.truncated()
    }

    /// All dependencies the engine has materialized.
    pub fn derived(&self) -> Vec<Dependency> {
        self.sat.derived()
    }

    /// Access the underlying saturator.
    pub fn saturator(&self) -> &Saturator {
        &self.sat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::parser::{parse_dependencies, parse_dependency};

    fn deps(srcs: &[&str]) -> Vec<Dependency> {
        parse_dependencies(srcs).unwrap()
    }

    #[test]
    fn theorem_4_4a_reversed_ind() {
        // Σ = {R: A -> B, R[A] <= R[B]} ⊨_fin R[B] <= R[A] — but NOT under
        // unrestricted implication (Figure 4.1 is the infinite witness).
        let sigma = deps(&["R: A -> B", "R[A] <= R[B]"]);
        let engine = FiniteEngine::new(&sigma);
        assert!(engine.implies(&parse_dependency("R[B] <= R[A]").unwrap()));
    }

    #[test]
    fn theorem_4_4b_flipped_fd() {
        // Σ = {R: A -> B, R[A] <= R[B]} ⊨_fin R: B -> A.
        let sigma = deps(&["R: A -> B", "R[A] <= R[B]"]);
        let engine = FiniteEngine::new(&sigma);
        assert!(engine.implies(&parse_dependency("R: B -> A").unwrap()));
    }

    #[test]
    fn theorem_6_1_cycle() {
        // The Section 6 family with k = 2:
        // Σ = {R_i: A -> B, R_i[A] <= R_{i+1}[B] (mod 3)}.
        // σ = R_0[B] <= R_2[A] (reversal of the last cycle IND).
        let sigma = deps(&[
            "R0: A -> B",
            "R1: A -> B",
            "R2: A -> B",
            "R0[A] <= R1[B]",
            "R1[A] <= R2[B]",
            "R2[A] <= R0[B]",
        ]);
        let engine = FiniteEngine::new(&sigma);
        assert!(engine.implies(&parse_dependency("R0[B] <= R2[A]").unwrap()));
        // Every cycle IND reverses.
        assert!(engine.implies(&parse_dependency("R1[B] <= R0[A]").unwrap()));
        assert!(engine.implies(&parse_dependency("R2[B] <= R1[A]").unwrap()));
        // And the flipped FDs hold too.
        assert!(engine.implies(&parse_dependency("R0: B -> A").unwrap()));
        // But unrelated dependencies do not.
        assert!(!engine.implies(&parse_dependency("R0[A] <= R2[B]").unwrap()));
        assert!(!engine.implies(&parse_dependency("R0[A = B]").unwrap()));
    }

    #[test]
    fn no_cycle_no_derivation() {
        // A -> B with a one-way inclusion: counting must NOT fire.
        let sigma = deps(&["R: A -> B", "R[B] <= R[A]"]);
        let engine = FiniteEngine::new(&sigma);
        // |r[B]| <= |r[A]| from both the FD and the IND: consistent, no cycle
        // through a reversing edge.
        assert!(!engine.implies(&parse_dependency("R[A] <= R[B]").unwrap()));
        assert!(!engine.implies(&parse_dependency("R: B -> A").unwrap()));
    }

    #[test]
    fn counting_interacts_with_saturator() {
        // After the counting rule derives R[B] <= R[A], Proposition 4.1 can
        // fire through it: with R: A -> B ... pull FD back through the
        // reversed IND. Here we check the combined engine reaches a
        // dependency needing both engines: S inherits the flip through a
        // bridge IND.
        let sigma = deps(&["R: A -> B", "R[A] <= R[B]", "S[C] <= R[B]"]);
        let engine = FiniteEngine::new(&sigma);
        // R[B] <= R[A] (counting), then S[C] <= R[B] <= R[A] by IND3.
        assert!(engine.implies(&parse_dependency("S[C] <= R[A]").unwrap()));
    }

    #[test]
    fn counting_rule_emits_nothing_for_pure_fds() {
        let sigma = deps(&["R: A -> B", "R: B -> C"]);
        let engine = FiniteEngine::new(&sigma);
        assert!(!engine.implies(&parse_dependency("R: B -> A").unwrap()));
        assert!(engine.implies(&parse_dependency("R: A -> C").unwrap()));
    }

    #[test]
    fn tarjan_components() {
        // 0 -> 1 -> 2 -> 0 is one SCC; 3 -> 0 is its own.
        let scc = tarjan(4, &[(0, 1), (1, 2), (2, 0), (3, 0)]);
        assert_eq!(scc[0], scc[1]);
        assert_eq!(scc[1], scc[2]);
        assert_ne!(scc[3], scc[0]);
    }
}
