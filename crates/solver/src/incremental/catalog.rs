//! Snapshot-isolated validation: one shared catalog, many sessions.
//!
//! [`Validator`](super::Validator) assumes exclusive `&mut` access — one
//! owner mutates, everyone else waits. This module refactors that
//! ownership model into the multi-version shape a serving system needs
//! (`depkit serve` multiplexes thousands of client streams over one
//! catalog):
//!
//! * [`CatalogState`] is the shared engine: the compiled `(Schema, Σ)`
//!   plan (immutable after construction) plus a generation-stamped mutable
//!   state — per-relation row membership, FD witness maps and IND
//!   projection counts, all kept as [`VersionedIndex`]es whose per-key
//!   histories answer "what was the count as of generation `g`?".
//! * [`Session`] is the per-client unit of work: it pins a [`Snapshot`] at
//!   the current generation, stages a [`Delta`] without taking any lock,
//!   previews the violation set of *snapshot + staged delta* in time
//!   proportional to the delta, and then either commits or aborts.
//! * [`Snapshot`] is a pinned read view: its generation stays fully
//!   readable — membership probes, violation enumeration, whole-relation
//!   scans over copy-on-write column chunks — while writers advance.
//!
//! ## The commit protocol
//!
//! Commit applies the staged delta to the *latest* state, not to the
//! session's snapshot: deltas are absolute presence operations (insert a
//! row, delete a row — both idempotent), so interleaved sessions compose
//! without write-write conflict detection and the final state equals a
//! serial replay of the committed deltas in commit order. The writer
//! critical section is short: take the write lock, stamp every effective
//! row change at `generation + 1`, publish the new generation, release.
//! Sessions whose delta is empty, or whose every operation is a no-op
//! (duplicate insert, absent delete), do **not** advance the generation —
//! the empty-commit fast path touches no index at all.
//!
//! Abort is cheaper still: staging lives entirely inside the [`Session`],
//! so dropping it cannot leave a trace in any snapshot — the same
//! atomic-on-error discipline [`Validator::seed`](super::Validator::seed)
//! established for bulk loads, promoted to the transaction boundary.
//!
//! ## Generation-counter invariants
//!
//! 1. The generation increases only inside the write lock, and only when
//!    at least one row actually changed.
//! 2. A snapshot pins its generation in the catalog's pin table while the
//!    read lock is held, so the pruning watermark (the minimum pinned
//!    generation) can never pass a live reader; history a pinned reader
//!    may still ask for is never pruned.
//! 3. Writers stamp new counts at `g + 1`; every reader pinned at or
//!    below `g` observes exactly the pre-commit counts. Uncommitted
//!    staging is invisible at every generation.

use super::ViolationKey;
use depkit_core::column::{ChunkedColumn, ChunkedColumnSnapshot};
use depkit_core::database::Database;
use depkit_core::delta::{Delta, DeltaOutcome};
use depkit_core::dependency::Dependency;
use depkit_core::error::CoreError;
use depkit_core::hashing::{FastMap, FastSet};
use depkit_core::index::{GenValue, ValueInterner, VersionedIndex};
use depkit_core::intern::Catalog;
use depkit_core::relation::Tuple;
use depkit_core::schema::{DatabaseSchema, RelName};
use depkit_core::value::Value;
use depkit_core::wal::CheckpointDoc;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// How many commits between automatic [`VersionedIndex::vacuum`] passes
/// over the whole state (dead keys cost one map entry, and dead log rows
/// one log slot, until then). The cadence amortizes the vacuum's
/// live-key scan: work on *dead* entries is proportional to the churn
/// no matter the cadence, but rescanning live keys is pure overhead, so
/// it runs rarely.
const VACUUM_EVERY: u64 = 8192;

/// A row of the log that is still alive (its `died` stamp).
const NEVER: u64 = u64::MAX;

/// The compiled, immutable part of one FD: where to project.
#[derive(Debug)]
struct FdPlan {
    /// Index into `Σ`.
    dep: usize,
    lhs_cols: Vec<usize>,
    rhs_cols: Vec<usize>,
}

/// The compiled, immutable part of one IND: where to project.
#[derive(Debug)]
struct IndPlan {
    /// Index into `Σ`.
    dep: usize,
    lhs_cols: Vec<usize>,
    rhs_cols: Vec<usize>,
}

/// Per-relation append-only row log in copy-on-write chunked columns: one
/// id column per attribute plus the `[born, died)` generation interval.
/// A row is visible at generation `g` iff `born <= g < died`. The log is
/// what lets a [`Snapshot`] scan a whole relation without holding the
/// catalog lock: sealed chunks are shared `Arc`s, and the one mutation a
/// live log row can suffer — its `died` stamp — is copy-on-write, so a
/// reader's clone is immune to it.
#[derive(Debug, Default)]
struct RelLog {
    attrs: Vec<ChunkedColumn<u32>>,
    born: ChunkedColumn<u64>,
    died: ChunkedColumn<u64>,
}

/// The generation-stamped mutable state behind the catalog's write lock.
#[derive(Debug)]
struct MutState {
    /// Append-only value interner: ids are never recycled, so an id in a
    /// pinned snapshot's history resolves forever.
    values: ValueInterner,
    /// Per-relation row membership (full-row key, 0/1-valued history).
    rows: Vec<VersionedIndex>,
    /// Per-relation live-row count history.
    row_count: Vec<GenValue>,
    /// Per-relation append-only row log (snapshot scans).
    log: Vec<RelLog>,
    /// Writer-only map from live row to its log position (to stamp `died`).
    log_pos: Vec<FastMap<Vec<u32>, u32>>,
    /// Per-FD multiset of `X ++ Y` projection pairs.
    fd_pairs: Vec<VersionedIndex>,
    /// Per-FD map `X` → number of distinct `Y` projections (violating iff ≥ 2).
    fd_distinct: Vec<VersionedIndex>,
    /// Per-IND multiset of left-side projections.
    ind_left: Vec<VersionedIndex>,
    /// Per-IND multiset of right-side projections.
    ind_right: Vec<VersionedIndex>,
    /// History of the total number of violating keys across all of Σ —
    /// maintained on every 0↔1 / 1↔2 index transition so
    /// [`Snapshot::is_consistent`] is `O(log)` and
    /// [`Session::is_consistent`] is `O(delta)`, never a key-space scan.
    viol_count: GenValue,
    /// Per-dependency violating-key history, indexed by position in Σ —
    /// the same transitions that feed `viol_count`, split out so
    /// [`Snapshot::health`] answers per-dependency satisfaction without a
    /// key-space scan.
    dep_viol: Vec<GenValue>,
    /// Per-dependency tracked-key history, indexed by position in Σ: for
    /// an FD the number of live distinct LHS groups, for an IND the
    /// number of live distinct left-side projections. `violating /
    /// tracked` is the unsatisfied fraction at any pinned generation.
    dep_keys: Vec<GenValue>,
    /// Commits since the last automatic vacuum.
    commits: u64,
    /// Per-client idempotency table: the last commit token each client
    /// used and the outcome its commit produced. A retried commit whose
    /// token matches returns the stored outcome instead of re-applying —
    /// the serve layer's lost-ack protection. Checkpointed and replayed
    /// with the rest of the state so dedup survives a crash.
    tokens: FastMap<String, TokenRecord>,
    /// Reusable projection-key buffer for the write path (no per-op
    /// allocation; the index mutators clone only on first insertion).
    scratch: Vec<u32>,
}

/// What [`MutState::tokens`] remembers per client.
#[derive(Debug, Clone)]
struct TokenRecord {
    token: String,
    outcome: CommitOutcome,
}

/// Everything a [`CatalogState`] handle points at.
#[derive(Debug)]
struct Inner {
    schema: DatabaseSchema,
    sigma: Vec<Dependency>,
    names: Catalog,
    fds: Vec<FdPlan>,
    inds: Vec<IndPlan>,
    fd_watch: Vec<Vec<u32>>,
    ind_left_watch: Vec<Vec<u32>>,
    ind_right_watch: Vec<Vec<u32>>,
    state: RwLock<MutState>,
    /// The durability hook: every effective commit is offered to the
    /// sink *inside* the write lock, after the state is stamped and
    /// before the outcome is returned — so by the time a caller sees an
    /// acknowledgement, the commit is recorded. `None` for the plain
    /// in-memory catalog. Lock order: `state` before `sink`, always.
    sink: Mutex<Option<Box<dyn CommitSink>>>,
    /// Set when a sink append fails with the state already mutated: the
    /// in-memory catalog is ahead of the durable log, so every further
    /// tagged commit is refused (degraded read-only) rather than widening
    /// the divergence. Cleared only by restarting from the log.
    sink_poisoned: AtomicBool,
    /// Pinned generation → number of snapshots pinning it.
    pins: Mutex<BTreeMap<u64, usize>>,
    /// The published generation (only advanced inside the write lock).
    generation: AtomicU64,
    /// The pruning watermark: the minimum pinned generation, or the
    /// current generation when nothing is pinned. Monotone per reader:
    /// a stale (lower) load only prunes less.
    watermark: AtomicU64,
}

impl Inner {
    fn read(&self) -> RwLockReadGuard<'_, MutState> {
        self.state.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, MutState> {
        self.state.write().unwrap_or_else(|e| e.into_inner())
    }

    fn rel_index(&self, rel: &RelName, t: &Tuple) -> Result<usize, CoreError> {
        let id = self
            .names
            .rel_id(rel)
            .ok_or_else(|| CoreError::UnknownRelation(rel.name().to_owned()))?;
        let arity = self.schema.schemes()[id.index()].arity();
        if t.len() != arity {
            return Err(CoreError::TupleArity {
                relation: rel.name().to_owned(),
                expected: arity,
                actual: t.len(),
            });
        }
        Ok(id.index())
    }

    /// The sorted set of generations live snapshots currently pin —
    /// exactly what sparse pruning must keep observable.
    fn pinned_gens(&self) -> Vec<u64> {
        let pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
        pins.keys().copied().collect()
    }

    /// Register one more snapshot of `gen` and lower the watermark to it.
    /// Caller must hold the read (or write) lock so no commit can advance
    /// the generation — and prune up to it — between choosing `gen` and
    /// recording the pin.
    fn pin(&self, gen: u64) {
        let mut pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
        *pins.entry(gen).or_insert(0) += 1;
        let wm = *pins.keys().next().expect("just inserted");
        self.watermark.store(wm, Ordering::Release);
    }

    /// Drop one pin of `gen`, raising the watermark if it was the oldest.
    fn unpin(&self, gen: u64) {
        let mut pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(n) = pins.get_mut(&gen) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&gen);
            }
        }
        let wm = pins
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.generation.load(Ordering::Acquire));
        self.watermark.store(wm, Ordering::Release);
    }

    /// Apply one effective deletion at `gen`, returning whether the row
    /// was present. Stamps every watching constraint.
    fn delete_row(&self, st: &mut MutState, r: usize, vals: &[Value], gen: u64, w: u64) -> bool {
        let Some(row) = st.values.lookup_row(vals) else {
            return false; // never-interned values cannot be in a live row
        };
        if st.rows[r].latest(&row) == 0 {
            return false;
        }
        st.rows[r].remove(&row, gen, w);
        let c = st.row_count[r].latest() - 1;
        st.row_count[r].set(gen, c, w);
        if let Some(pos) = st.log_pos[r].remove(&row) {
            st.log[r].died.set(pos as usize, gen);
        }
        let mut dv = 0i64; // net change in violating keys
        let mut key = std::mem::take(&mut st.scratch);
        for &fi in &self.fd_watch[r] {
            let f = &self.fds[fi as usize];
            key.clear();
            key.extend(f.lhs_cols.iter().map(|&c| row[c]));
            let split = key.len();
            key.extend(f.rhs_cols.iter().map(|&c| row[c]));
            if st.fd_pairs[fi as usize].remove(&key, gen, w) == 0 {
                match st.fd_distinct[fi as usize].remove(&key[..split], gen, w) {
                    0 => bump_gen(&mut st.dep_keys[f.dep], -1, gen, w), // group gone
                    1 => {
                        dv -= 1; // the LHS group dropped from 2 distinct RHS to 1
                        bump_gen(&mut st.dep_viol[f.dep], -1, gen, w);
                    }
                    _ => {}
                }
            }
        }
        for &ii in &self.ind_left_watch[r] {
            let i = &self.inds[ii as usize];
            key.clear();
            key.extend(i.lhs_cols.iter().map(|&c| row[c]));
            if st.ind_left[ii as usize].remove(&key, gen, w) == 0 {
                bump_gen(&mut st.dep_keys[i.dep], -1, gen, w); // left key gone
                if st.ind_right[ii as usize].latest(&key) == 0 {
                    dv -= 1; // the last dangling left occurrence is gone
                    bump_gen(&mut st.dep_viol[i.dep], -1, gen, w);
                }
            }
        }
        for &ii in &self.ind_right_watch[r] {
            let i = &self.inds[ii as usize];
            key.clear();
            key.extend(i.rhs_cols.iter().map(|&c| row[c]));
            if st.ind_right[ii as usize].remove(&key, gen, w) == 0
                && st.ind_left[ii as usize].latest(&key) > 0
            {
                dv += 1; // left occurrences just lost their last witness
                bump_gen(&mut st.dep_viol[i.dep], 1, gen, w);
            }
        }
        st.scratch = key;
        bump_viol_count(st, dv, gen, w);
        true
    }

    /// Apply one effective insertion at `gen`, returning whether the row
    /// was new. Stamps every watching constraint.
    fn insert_row(&self, st: &mut MutState, r: usize, vals: &[Value], gen: u64, w: u64) -> bool {
        let row = st.values.intern_row(vals);
        if st.rows[r].latest(&row) != 0 {
            return false;
        }
        st.rows[r].add(&row, gen, w);
        let c = st.row_count[r].latest() + 1;
        st.row_count[r].set(gen, c, w);
        let log = &mut st.log[r];
        let pos = log.born.len() as u32;
        for (col, &id) in log.attrs.iter_mut().zip(&row) {
            col.push(id);
        }
        log.born.push(gen);
        log.died.push(NEVER);
        st.log_pos[r].insert(row.clone(), pos);
        let mut dv = 0i64; // net change in violating keys
        let mut key = std::mem::take(&mut st.scratch);
        for &fi in &self.fd_watch[r] {
            let f = &self.fds[fi as usize];
            key.clear();
            key.extend(f.lhs_cols.iter().map(|&c| row[c]));
            let split = key.len();
            key.extend(f.rhs_cols.iter().map(|&c| row[c]));
            if st.fd_pairs[fi as usize].add(&key, gen, w) == 1 {
                match st.fd_distinct[fi as usize].add(&key[..split], gen, w) {
                    1 => bump_gen(&mut st.dep_keys[f.dep], 1, gen, w), // fresh group
                    2 => {
                        dv += 1; // the LHS group just reached 2 distinct RHS
                        bump_gen(&mut st.dep_viol[f.dep], 1, gen, w);
                    }
                    _ => {}
                }
            }
        }
        for &ii in &self.ind_left_watch[r] {
            let i = &self.inds[ii as usize];
            key.clear();
            key.extend(i.lhs_cols.iter().map(|&c| row[c]));
            if st.ind_left[ii as usize].add(&key, gen, w) == 1 {
                bump_gen(&mut st.dep_keys[i.dep], 1, gen, w); // fresh left key
                if st.ind_right[ii as usize].latest(&key) == 0 {
                    dv += 1; // a fresh left occurrence with no witness
                    bump_gen(&mut st.dep_viol[i.dep], 1, gen, w);
                }
            }
        }
        for &ii in &self.ind_right_watch[r] {
            let i = &self.inds[ii as usize];
            key.clear();
            key.extend(i.rhs_cols.iter().map(|&c| row[c]));
            if st.ind_right[ii as usize].add(&key, gen, w) == 1
                && st.ind_left[ii as usize].latest(&key) > 0
            {
                dv -= 1; // dangling left occurrences just got a witness
                bump_gen(&mut st.dep_viol[i.dep], -1, gen, w);
            }
        }
        st.scratch = key;
        bump_viol_count(st, dv, gen, w);
        true
    }

    /// Lower `staged` into interned-id space against generation `gen`:
    /// every value resolves to its interner id, or to a fresh
    /// *session-local* id (`>= base`) when the interner has never seen it.
    /// Local ids are deduplicated (equal unknown values share one id), so
    /// staged rows still collide with each other — and by construction a
    /// projection containing a local id has base count 0.
    ///
    /// `changed` holds one `(relation, id row, ±1)` entry per row whose
    /// presence actually flips, in Delta order (deletes first, both
    /// idempotent against the evolving view). Every staged operation must
    /// already be validated against the schema.
    fn staged_changes(&self, st: &MutState, gen: u64, staged: &Delta) -> StagedIds {
        let base = st.values.len() as u32;
        let mut locals: Vec<Value> = Vec::new();
        let mut local_ids: FastMap<Value, u32> = FastMap::default();
        let mut view: FastMap<(usize, Vec<u32>), bool> = FastMap::default();
        let mut changed: Vec<(usize, Vec<u32>, i64)> = Vec::new();
        for (phase, ops) in [(false, &staged.deletes), (true, &staged.inserts)] {
            for (rel, t) in ops {
                let r = self.rel_index(rel, t).expect("staged ops are validated");
                let row: Vec<u32> = t
                    .values()
                    .iter()
                    .map(|v| {
                        st.values.lookup(v).unwrap_or_else(|| {
                            *local_ids.entry(v.clone()).or_insert_with(|| {
                                locals.push(v.clone());
                                base + (locals.len() - 1) as u32
                            })
                        })
                    })
                    .collect();
                let cur = match view.get(&(r, row.clone())) {
                    Some(&p) => p,
                    None => row.iter().all(|&id| id < base) && st.rows[r].count_at(&row, gen) > 0,
                };
                if cur != phase {
                    view.insert((r, row.clone()), phase);
                    changed.push((r, row, if phase { 1 } else { -1 }));
                }
            }
        }
        StagedIds {
            base,
            locals,
            changed,
        }
    }

    /// Per-FD adjustment map of the staged changes: touched LHS group →
    /// RHS projection → net multiset change (all in id space).
    fn fd_adjustments(
        &self,
        ids: &StagedIds,
        fi: usize,
        f: &FdPlan,
    ) -> FastMap<Vec<u32>, FastMap<Vec<u32>, i64>> {
        let mut adj: FastMap<Vec<u32>, FastMap<Vec<u32>, i64>> = FastMap::default();
        for (r, row, sign) in &ids.changed {
            if self.fd_watch[*r].contains(&(fi as u32)) {
                let x = project(row, &f.lhs_cols);
                let y = project(row, &f.rhs_cols);
                *adj.entry(x).or_default().entry(y).or_default() += sign;
            }
        }
        adj
    }

    /// For one touched FD LHS group: the base distinct-RHS count at `gen`
    /// and the net change the adjustments make to it.
    fn fd_group_delta(
        &self,
        st: &MutState,
        ids: &StagedIds,
        fi: usize,
        gen: u64,
        x: &[u32],
        ys: &FastMap<Vec<u32>, i64>,
    ) -> (i64, i64) {
        let base_distinct = if ids.known(x) {
            st.fd_distinct[fi].count_at(x, gen) as i64
        } else {
            0
        };
        let mut delta = 0i64;
        let mut pair = Vec::with_capacity(x.len() + 1);
        for (y, d) in ys {
            pair.clear();
            pair.extend_from_slice(x);
            pair.extend_from_slice(y);
            let base = if ids.known(&pair) {
                st.fd_pairs[fi].count_at(&pair, gen) as i64
            } else {
                0
            };
            delta += i64::from(base + d > 0) - i64::from(base > 0);
        }
        (base_distinct, delta)
    }

    /// Per-IND adjustment maps of the staged changes: touched key → net
    /// multiset change, for the left and right side (in id space).
    #[allow(clippy::type_complexity)]
    fn ind_adjustments(
        &self,
        ids: &StagedIds,
        ii: usize,
        i: &IndPlan,
    ) -> (FastMap<Vec<u32>, i64>, FastMap<Vec<u32>, i64>) {
        let mut adj_l: FastMap<Vec<u32>, i64> = FastMap::default();
        let mut adj_r: FastMap<Vec<u32>, i64> = FastMap::default();
        for (r, row, sign) in &ids.changed {
            if self.ind_left_watch[*r].contains(&(ii as u32)) {
                *adj_l.entry(project(row, &i.lhs_cols)).or_default() += sign;
            }
            if self.ind_right_watch[*r].contains(&(ii as u32)) {
                *adj_r.entry(project(row, &i.rhs_cols)).or_default() += sign;
            }
        }
        (adj_l, adj_r)
    }

    /// Base left/right multiset counts of one IND key at `gen`.
    fn ind_key_counts(
        &self,
        st: &MutState,
        ids: &StagedIds,
        ii: usize,
        gen: u64,
        key: &[u32],
    ) -> (i64, i64) {
        if ids.known(key) {
            (
                st.ind_left[ii].count_at(key, gen) as i64,
                st.ind_right[ii].count_at(key, gen) as i64,
            )
        } else {
            (0, 0)
        }
    }

    /// Whether `(generation gen) + staged` satisfies every dependency, in
    /// time proportional to the staged delta alone: the base contributes
    /// only its maintained violation counter, and only keys the delta
    /// touches are re-evaluated.
    fn consistent_with(&self, gen: u64, staged: &Delta) -> bool {
        let st = self.read();
        let ids = self.staged_changes(&st, gen, staged);
        let mut net = i64::from(st.viol_count.at(gen));
        for (fi, f) in self.fds.iter().enumerate() {
            for (x, ys) in &self.fd_adjustments(&ids, fi, f) {
                let (base_distinct, delta) = self.fd_group_delta(&st, &ids, fi, gen, x, ys);
                net += i64::from(base_distinct + delta >= 2) - i64::from(base_distinct >= 2);
            }
        }
        for (ii, i) in self.inds.iter().enumerate() {
            let (adj_l, adj_r) = self.ind_adjustments(&ids, ii, i);
            let affected: FastSet<&Vec<u32>> = adj_l.keys().chain(adj_r.keys()).collect();
            for key in affected {
                let (left, right) = self.ind_key_counts(&st, &ids, ii, gen, key);
                let dl = adj_l.get(key).copied().unwrap_or(0);
                let dr = adj_r.get(key).copied().unwrap_or(0);
                net +=
                    i64::from(left + dl > 0 && right + dr == 0) - i64::from(left > 0 && right == 0);
            }
        }
        net == 0
    }

    /// The violation set of `(generation gen) + staged`, in time
    /// proportional to the staged delta plus the base violation count.
    fn violations_with(&self, gen: u64, staged: &Delta) -> BTreeSet<ViolationKey> {
        let st = self.read();
        let ids = self.staged_changes(&st, gen, staged);
        let mut out = BTreeSet::new();
        // FDs: recompute the distinct-RHS count of every touched LHS
        // group; carry the untouched part of the base violation set.
        for (fi, f) in self.fds.iter().enumerate() {
            let adj = self.fd_adjustments(&ids, fi, f);
            for (x, ys) in &adj {
                let (base_distinct, delta) = self.fd_group_delta(&st, &ids, fi, gen, x, ys);
                if base_distinct + delta >= 2 {
                    out.insert(ViolationKey::Fd {
                        dep: f.dep,
                        lhs: ids.resolve(&st, x),
                    });
                }
            }
            for (key, c) in st.fd_distinct[fi].iter_at(gen) {
                if c >= 2 && !adj.contains_key(key) {
                    out.insert(ViolationKey::Fd {
                        dep: f.dep,
                        lhs: st.values.resolve_row(key),
                    });
                }
            }
        }
        // INDs: recompute every key a staged row projects to (on either
        // side); carry the untouched part of the base violation set.
        for (ii, i) in self.inds.iter().enumerate() {
            let (adj_l, adj_r) = self.ind_adjustments(&ids, ii, i);
            let affected: FastSet<&Vec<u32>> = adj_l.keys().chain(adj_r.keys()).collect();
            for key in &affected {
                let (left, right) = self.ind_key_counts(&st, &ids, ii, gen, key);
                let left = left + adj_l.get(*key).copied().unwrap_or(0);
                let right = right + adj_r.get(*key).copied().unwrap_or(0);
                if left > 0 && right == 0 {
                    out.insert(ViolationKey::Ind {
                        dep: i.dep,
                        missing: ids.resolve(&st, key),
                    });
                }
            }
            for (key, c) in st.ind_left[ii].iter_at(gen) {
                if c > 0 && st.ind_right[ii].count_at(key, gen) == 0 && !affected.contains(key) {
                    out.insert(ViolationKey::Ind {
                        dep: i.dep,
                        missing: st.values.resolve_row(key),
                    });
                }
            }
        }
        out
    }
}

/// A staged delta lowered into interned-id space (see
/// [`Inner::staged_changes`]): ids `< base` are interner ids, ids
/// `>= base` are session-local stand-ins for values the interner has
/// never seen.
struct StagedIds {
    /// First session-local id (the interner length at lowering time).
    base: u32,
    /// Local id `base + i` resolves to `locals[i]`.
    locals: Vec<Value>,
    /// Effective row flips: `(relation, id row, ±1)`.
    changed: Vec<(usize, Vec<u32>, i64)>,
}

impl StagedIds {
    /// Whether every id of `key` is a real interner id — i.e. the key
    /// *can* have a nonzero count in the base state.
    fn known(&self, key: &[u32]) -> bool {
        key.iter().all(|&id| id < self.base)
    }

    /// Resolve a possibly-mixed id key back to values.
    fn resolve(&self, st: &MutState, key: &[u32]) -> Vec<Value> {
        key.iter()
            .map(|&id| {
                if id < self.base {
                    st.values.resolve(id).clone()
                } else {
                    self.locals[(id - self.base) as usize].clone()
                }
            })
            .collect()
    }
}

fn project(row: &[u32], cols: &[usize]) -> Vec<u32> {
    cols.iter().map(|&c| row[c]).collect()
}

/// Stamp a net change of `dv` onto one generation-stamped counter.
fn bump_gen(g: &mut GenValue, dv: i64, gen: u64, w: u64) {
    if dv != 0 {
        let c = i64::from(g.latest()) + dv;
        debug_assert!(c >= 0, "generation counter went negative");
        g.set(gen, c.max(0) as u32, w);
    }
}

/// Stamp a net change of `dv` violating keys at `gen`.
fn bump_viol_count(st: &mut MutState, dv: i64, gen: u64, w: u64) {
    bump_gen(&mut st.viol_count, dv, gen, w);
}

/// Live satisfaction accounting for one dependency of Σ at a pinned
/// generation — the quantitative form of a [`ViolationKey`] listing.
///
/// `tracked` counts the keys the dependency quantifies over (FD: live
/// distinct LHS groups; IND: live distinct left-side projections) and
/// `violating` how many of them currently break it, so
/// [`ratio`](DepHealth::ratio) is the satisfied fraction. Both are
/// maintained incrementally on the same index transitions that feed the
/// global violation counter: reading health is `O(Σ)` regardless of the
/// database size, and each commit updates it in `O(delta)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DepHealth {
    /// The dependency, cloned from the catalog's Σ.
    pub dep: Dependency,
    /// Keys currently violating the dependency.
    pub violating: u64,
    /// Keys the dependency is evaluated over.
    pub tracked: u64,
}

impl DepHealth {
    /// The satisfied fraction, in `[0, 1]` — vacuously `1.0` when no key
    /// is tracked (an empty relation satisfies every dependency).
    pub fn ratio(&self) -> f64 {
        if self.tracked == 0 {
            1.0
        } else {
            1.0 - self.violating as f64 / self.tracked as f64
        }
    }
}

/// What a [`Session::commit`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitOutcome {
    /// The generation the commit published — unchanged when every staged
    /// operation was a no-op (the empty-commit fast path).
    pub generation: u64,
    /// How many operations changed the catalog.
    pub applied: DeltaOutcome,
    /// `true` when [`Session::commit_tagged`] recognized the commit
    /// token as already applied and returned the *original* outcome
    /// instead of re-applying — the idempotent-retry path. The staged
    /// delta of a replayed commit is discarded without a trace.
    pub replayed: bool,
}

/// One effective commit, as offered to a [`CommitSink`] inside the write
/// lock: the generation the commit is publishing, the committing
/// client's idempotency tag (id and token) when it sent one, the staged
/// delta exactly as committed, and what it changed. Replaying `delta`
/// through the normal commit path against the state the previous records
/// produced yields `applied` again — deltas are absolute presence
/// operations, so the record is a complete redo log entry.
#[derive(Debug)]
pub struct CommitRecord<'a> {
    /// The generation this commit publishes.
    pub generation: u64,
    /// `(client id, commit token)` when the committer sent one.
    pub client: Option<(&'a str, &'a str)>,
    /// The staged delta, exactly as committed.
    pub delta: &'a Delta,
    /// What the delta changed (no-ops excluded).
    pub applied: DeltaOutcome,
}

/// A durability hook invoked for every *effective* commit, inside the
/// writer critical section, after the state is stamped and before the
/// committer sees its outcome — acknowledgement therefore implies the
/// sink has recorded the commit (this is where the write-ahead log
/// lives; see `depkit_solver::incremental::durable`).
///
/// An `Err` poisons the catalog: the commit that triggered it still
/// publishes (the in-memory state is already mutated and must stay
/// coherent for readers), but the committer gets
/// [`CoreError::Durability`] instead of an ack, and every subsequent
/// tagged commit is refused until the process restarts and recovers from
/// the log.
pub trait CommitSink: Send + std::fmt::Debug {
    /// Record one effective commit; the error string names the failure.
    fn record(&mut self, rec: &CommitRecord<'_>) -> Result<(), String>;
}

/// The shared, snapshot-isolated FD/IND validation engine — the
/// multi-session refactoring of [`Validator`](super::Validator).
///
/// Cloning the handle is cheap (it is an [`Arc`]); every clone addresses
/// the same catalog, so one `CatalogState` can be handed to any number of
/// threads, each running its own [`Session`]s.
///
/// # Examples
///
/// Two sessions over one catalog — the reader's pinned snapshot never
/// observes the writer's staging, and commits serialize cleanly:
///
/// ```
/// use depkit_core::prelude::*;
/// use depkit_solver::incremental::CatalogState;
///
/// let schema = DatabaseSchema::parse(&["EMP(NAME, DEPT)", "DEPT(DNO)"]).unwrap();
/// let sigma: Vec<Dependency> = vec!["EMP[DEPT] <= DEPT[DNO]".parse().unwrap()];
/// let cat = CatalogState::new(&schema, &sigma).unwrap();
///
/// let mut writer = cat.begin();
/// writer.stage_insert("EMP", Tuple::strs(&["hilbert", "math"])).unwrap();
/// // The writer previews the violation its own staging would introduce...
/// assert_eq!(writer.violations().len(), 1);
/// // ...but a concurrent snapshot sees nothing until commit.
/// let reader = cat.snapshot();
/// assert!(reader.violations().is_empty());
///
/// let out = writer.commit();
/// assert_eq!(out.applied.inserted, 1);
/// // The old snapshot still reads its own generation...
/// assert!(reader.violations().is_empty());
/// // ...while a fresh one sees the dangling employee.
/// assert_eq!(cat.snapshot().violations().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CatalogState {
    inner: Arc<Inner>,
}

impl CatalogState {
    /// Compile a catalog for `sigma` over `schema`, starting from the
    /// empty database at generation `0`. Like
    /// [`Validator::new`](super::Validator::new), `sigma` may contain FDs
    /// and INDs only.
    pub fn new(schema: &DatabaseSchema, sigma: &[Dependency]) -> Result<Self, CoreError> {
        let names = Catalog::from_schema(schema);
        let n = schema.schemes().len();
        let mut fds = Vec::new();
        let mut inds = Vec::new();
        let mut fd_watch = vec![Vec::new(); n];
        let mut ind_left_watch = vec![Vec::new(); n];
        let mut ind_right_watch = vec![Vec::new(); n];
        for (dep, d) in sigma.iter().enumerate() {
            d.is_well_formed(schema)?;
            match d {
                Dependency::Fd(fd) => {
                    let scheme = schema.require(&fd.rel)?;
                    let rel = schema.scheme_index(&fd.rel).expect("well-formed");
                    fd_watch[rel].push(fds.len() as u32);
                    fds.push(FdPlan {
                        dep,
                        lhs_cols: scheme.columns(&fd.lhs)?,
                        rhs_cols: scheme.columns(&fd.rhs)?,
                    });
                }
                Dependency::Ind(ind) => {
                    let ls = schema.require(&ind.lhs_rel)?;
                    let rs = schema.require(&ind.rhs_rel)?;
                    let lhs_rel = schema.scheme_index(&ind.lhs_rel).expect("well-formed");
                    let rhs_rel = schema.scheme_index(&ind.rhs_rel).expect("well-formed");
                    ind_left_watch[lhs_rel].push(inds.len() as u32);
                    ind_right_watch[rhs_rel].push(inds.len() as u32);
                    inds.push(IndPlan {
                        dep,
                        lhs_cols: ls.columns(&ind.lhs_attrs)?,
                        rhs_cols: rs.columns(&ind.rhs_attrs)?,
                    });
                }
                other => {
                    return Err(CoreError::UnsupportedDependency(format!(
                        "the session catalog handles FDs and INDs only, got `{other}`"
                    )))
                }
            }
        }
        let state = MutState {
            values: ValueInterner::new_append_only(),
            rows: (0..n).map(|_| VersionedIndex::new()).collect(),
            row_count: (0..n).map(|_| GenValue::default()).collect(),
            log: (0..n)
                .map(|r| RelLog {
                    attrs: (0..schema.schemes()[r].arity())
                        .map(|_| ChunkedColumn::new())
                        .collect(),
                    born: ChunkedColumn::new(),
                    died: ChunkedColumn::new(),
                })
                .collect(),
            log_pos: (0..n).map(|_| FastMap::default()).collect(),
            fd_pairs: (0..fds.len()).map(|_| VersionedIndex::new()).collect(),
            fd_distinct: (0..fds.len()).map(|_| VersionedIndex::new()).collect(),
            ind_left: (0..inds.len()).map(|_| VersionedIndex::new()).collect(),
            ind_right: (0..inds.len()).map(|_| VersionedIndex::new()).collect(),
            viol_count: GenValue::default(),
            dep_viol: (0..sigma.len()).map(|_| GenValue::default()).collect(),
            dep_keys: (0..sigma.len()).map(|_| GenValue::default()).collect(),
            commits: 0,
            tokens: FastMap::default(),
            scratch: Vec::new(),
        };
        Ok(CatalogState {
            inner: Arc::new(Inner {
                schema: schema.clone(),
                sigma: sigma.to_vec(),
                names,
                fds,
                inds,
                fd_watch,
                ind_left_watch,
                ind_right_watch,
                state: RwLock::new(state),
                sink: Mutex::new(None),
                sink_poisoned: AtomicBool::new(false),
                pins: Mutex::new(BTreeMap::new()),
                generation: AtomicU64::new(0),
                watermark: AtomicU64::new(0),
            }),
        })
    }

    /// The schema the catalog was compiled for.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.inner.schema
    }

    /// The dependency set the catalog maintains.
    pub fn sigma(&self) -> &[Dependency] {
        &self.inner.sigma
    }

    /// The current published generation.
    pub fn generation(&self) -> u64 {
        self.inner.generation.load(Ordering::Acquire)
    }

    /// The pruning watermark — the oldest generation any live snapshot
    /// still pins (equals [`CatalogState::generation`] when none do).
    pub fn watermark(&self) -> u64 {
        self.inner.watermark.load(Ordering::Acquire)
    }

    /// Number of distinct values ever interned (the interner is
    /// append-only: pinned histories must resolve forever, so ids are not
    /// recycled — [`CatalogState::vacuum`] reclaims index keys instead).
    pub fn live_values(&self) -> usize {
        self.inner.read().values.len()
    }

    /// Total live rows at the current generation.
    pub fn total_rows(&self) -> usize {
        let st = self.inner.read();
        st.row_count.iter().map(|g| g.latest() as usize).sum()
    }

    /// Pin a read view at the current generation.
    pub fn snapshot(&self) -> Snapshot {
        let _st = self.inner.read(); // excludes writers while pinning
        let gen = self.inner.generation.load(Ordering::Acquire);
        self.inner.pin(gen);
        Snapshot {
            inner: Arc::clone(&self.inner),
            gen,
        }
    }

    /// Open a session: pin a snapshot and hand out empty staging.
    pub fn begin(&self) -> Session {
        Session {
            snapshot: self.snapshot(),
            staged: Delta::new(),
        }
    }

    /// Bulk-load `db` as one committed delta (the seeding path). Every
    /// relation is validated against the schema *before* any row is
    /// applied, so a failed seed leaves the catalog untouched.
    pub fn seed(&self, db: &Database) -> Result<CommitOutcome, CoreError> {
        let mut rels = Vec::with_capacity(db.relations().len());
        for relation in db.relations() {
            let name = relation.scheme().name();
            let r = self
                .inner
                .names
                .rel_id(name)
                .ok_or_else(|| CoreError::UnknownRelation(name.name().to_owned()))?
                .index();
            let arity = self.inner.schema.schemes()[r].arity();
            if relation.scheme().arity() != arity && !relation.is_empty() {
                return Err(CoreError::TupleArity {
                    relation: name.name().to_owned(),
                    expected: arity,
                    actual: relation.scheme().arity(),
                });
            }
            rels.push(r);
        }
        let inner = &*self.inner;
        let mut st = inner.write();
        let gen = inner.generation.load(Ordering::Acquire) + 1;
        let w = inner.watermark.load(Ordering::Acquire).min(gen - 1);
        let mut applied = DeltaOutcome::default();
        for (relation, &r) in db.relations().iter().zip(&rels) {
            for t in relation.tuples() {
                if inner.insert_row(&mut st, r, t.values(), gen, w) {
                    applied.inserted += 1;
                }
            }
        }
        Ok(CommitOutcome {
            generation: finish_commit(inner, &mut st, gen, w, applied),
            applied,
            replayed: false,
        })
    }

    /// Prune every history down to what live snapshots can still observe
    /// and evict dead keys — the `O(keys)` pass that runs automatically
    /// every `VACUUM_EVERY` (8192) commits, exposed for tests and
    /// maintenance windows.
    pub fn vacuum(&self) {
        let inner = &*self.inner;
        let mut st = inner.write();
        let gen = inner.generation.load(Ordering::Acquire);
        vacuum_locked(&mut st, gen, &inner.pinned_gens());
    }

    /// Install (or, with `None`, remove) the durability hook every
    /// effective commit is offered to — see [`CommitSink`]. The previous
    /// sink, if any, is dropped.
    pub fn set_commit_sink(&self, sink: Option<Box<dyn CommitSink>>) {
        let mut slot = self.inner.sink.lock().unwrap_or_else(|e| e.into_inner());
        *slot = sink;
    }

    /// Whether an earlier [`CommitSink`] failure left the catalog
    /// degraded read-only (every tagged commit is refused; see
    /// [`CommitSink`] for the contract).
    pub fn durability_poisoned(&self) -> bool {
        self.inner.sink_poisoned.load(Ordering::Acquire)
    }

    /// Run `f` over a [`CheckpointDoc`] of the current state while the
    /// catalog is *quiesced*: the read lock is held across the doc build
    /// and the whole of `f`, so no commit can interleave — the doc, and
    /// anything `f` does (write it to disk, reset a write-ahead log to
    /// its generation), observes one consistent cut of the catalog. This
    /// is the checkpoint primitive of the durability layer.
    pub fn quiesced<R>(&self, f: impl FnOnce(&CheckpointDoc) -> R) -> R {
        let inner = &*self.inner;
        let st = inner.read();
        let generation = inner.generation.load(Ordering::Acquire);
        let values = (0..st.values.len() as u32)
            .map(|id| st.values.resolve(id).clone())
            .collect();
        let mut rows = Vec::with_capacity(st.log.len());
        for log in &st.log {
            let mut rel = Vec::new();
            for i in 0..log.born.len() {
                // A live row has no `died` stamp; a stamped row is dead at
                // the current generation (stamps never exceed it).
                if log.died.get(i) == NEVER {
                    rel.push((
                        log.born.get(i),
                        log.attrs.iter().map(|c| c.get(i)).collect(),
                    ));
                }
            }
            rows.push(rel);
        }
        let mut tokens: Vec<(String, String, u64, u64, u64)> = st
            .tokens
            .iter()
            .map(|(c, r)| {
                (
                    c.clone(),
                    r.token.clone(),
                    r.outcome.generation,
                    r.outcome.applied.inserted as u64,
                    r.outcome.applied.deleted as u64,
                )
            })
            .collect();
        tokens.sort();
        let doc = CheckpointDoc {
            schema: inner
                .schema
                .schemes()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            sigma: inner.sigma.iter().map(|d| d.to_string()).collect(),
            generation,
            values,
            rows,
            tokens,
        };
        f(&doc)
    }

    /// Rebuild a catalog from a verified [`CheckpointDoc`] — the
    /// recovery-on-start path. The doc's spec must match `(schema,
    /// sigma)` exactly (a checkpoint from a different world is refused
    /// with [`CoreError::Durability`]); rows are re-inserted through the
    /// normal stamping path at their original `born` generations, so the
    /// restored catalog's observable state — snapshots, violation
    /// counters, `health` — is identical to the catalog that wrote the
    /// checkpoint, and write-ahead-log replay can continue from
    /// `doc.generation` exactly as the original commits did.
    pub fn restore_from_doc(
        schema: &DatabaseSchema,
        sigma: &[Dependency],
        doc: &CheckpointDoc,
    ) -> Result<Self, CoreError> {
        let cat = CatalogState::new(schema, sigma)?;
        let decls: Vec<String> = schema.schemes().iter().map(|s| s.to_string()).collect();
        if doc.schema != decls {
            return Err(CoreError::Durability(format!(
                "checkpoint schema mismatch: catalog declares {decls:?}, checkpoint holds {:?}",
                doc.schema
            )));
        }
        let sigma_strs: Vec<String> = sigma.iter().map(|d| d.to_string()).collect();
        if doc.sigma != sigma_strs {
            return Err(CoreError::Durability(format!(
                "checkpoint dependency-set mismatch: catalog maintains {sigma_strs:?}, \
                 checkpoint holds {:?}",
                doc.sigma
            )));
        }
        if doc.rows.len() != schema.schemes().len() {
            return Err(CoreError::Durability(format!(
                "checkpoint holds {} relations, schema declares {}",
                doc.rows.len(),
                schema.schemes().len()
            )));
        }
        let inner = &*cat.inner;
        let mut st = inner.write();
        for (i, v) in doc.values.iter().enumerate() {
            let id = st.values.intern(v);
            if id as usize != i {
                return Err(CoreError::Durability(format!(
                    "checkpoint interner out of sequence: value {i} resolved to id {id} \
                     (duplicate value in checkpoint)"
                )));
            }
        }
        // Re-insert every live row at its original `born` generation, in
        // globally non-decreasing `born` order (the generation-stamp
        // monotonicity the histories require). The sort is stable, so
        // rows born in the same commit keep their log order.
        let mut all: Vec<(u64, usize, &Vec<u32>)> = Vec::new();
        for (r, rel) in doc.rows.iter().enumerate() {
            let arity = schema.schemes()[r].arity();
            for (born, row) in rel {
                if row.len() != arity {
                    return Err(CoreError::TupleArity {
                        relation: schema.schemes()[r].name().name().to_owned(),
                        expected: arity,
                        actual: row.len(),
                    });
                }
                if *born == 0 || *born > doc.generation {
                    return Err(CoreError::Durability(format!(
                        "checkpoint row in `{}` born at generation {born}, outside \
                         (0, {}]",
                        schema.schemes()[r].name(),
                        doc.generation
                    )));
                }
                if let Some(&id) = row.iter().find(|&&id| id as usize >= doc.values.len()) {
                    return Err(CoreError::Durability(format!(
                        "checkpoint row in `{}` references value id {id}, but the \
                         checkpoint interns only {} values",
                        schema.schemes()[r].name(),
                        doc.values.len()
                    )));
                }
                all.push((*born, r, row));
            }
        }
        all.sort_by_key(|&(born, _, _)| born);
        for &(born, r, row) in &all {
            let vals = st.values.resolve_row(row);
            if !inner.insert_row(&mut st, r, &vals, born, born - 1) {
                return Err(CoreError::Durability(format!(
                    "checkpoint row duplicated in `{}`",
                    schema.schemes()[r].name()
                )));
            }
        }
        for (client, token, generation, inserted, deleted) in &doc.tokens {
            st.tokens.insert(
                client.clone(),
                TokenRecord {
                    token: token.clone(),
                    outcome: CommitOutcome {
                        generation: *generation,
                        applied: DeltaOutcome {
                            inserted: *inserted as usize,
                            deleted: *deleted as usize,
                        },
                        replayed: false,
                    },
                },
            );
        }
        inner.generation.store(doc.generation, Ordering::Release);
        inner.watermark.store(doc.generation, Ordering::Release);
        drop(st);
        Ok(cat)
    }
}

/// Publish a commit: bump the generation only if something changed, and
/// run the periodic vacuum. Returns the generation now current.
fn finish_commit(
    inner: &Inner,
    st: &mut MutState,
    gen: u64,
    _w: u64,
    applied: DeltaOutcome,
) -> u64 {
    if applied == DeltaOutcome::default() {
        return gen - 1; // nothing was stamped; the generation stays put
    }
    inner.generation.store(gen, Ordering::Release);
    st.commits += 1;
    if st.commits.is_multiple_of(VACUUM_EVERY) {
        vacuum_locked(st, gen, &inner.pinned_gens());
    }
    gen
}

/// Prune every history to the *sparse* pin set rather than the watermark:
/// an entry survives only if it is the newest of its history or some
/// pinned generation still observes it. The distinction matters for
/// long-lived sessions — one old pin holds the watermark down forever,
/// and a counter that oscillates (a violation appearing and healing every
/// batch) would otherwise accrete one history entry per commit between
/// the pin and the head. Sparse pruning keeps `O(pins)` entries per
/// history instead.
fn vacuum_locked(st: &mut MutState, gen: u64, pins: &[u64]) {
    debug_assert!(pins.is_sorted());
    // The append-only row log still compacts by watermark below; the
    // index histories prune by the exact pin set.
    let w = pins.first().copied().unwrap_or(gen).min(gen);
    for idx in st
        .rows
        .iter_mut()
        .chain(st.fd_pairs.iter_mut())
        .chain(st.fd_distinct.iter_mut())
        .chain(st.ind_left.iter_mut())
        .chain(st.ind_right.iter_mut())
    {
        idx.vacuum_sparse(pins);
    }
    for g in st
        .row_count
        .iter_mut()
        .chain(st.dep_viol.iter_mut())
        .chain(st.dep_keys.iter_mut())
    {
        g.prune_sparse(pins);
    }
    st.viol_count.prune_sparse(pins);
    // Compact the append-only row logs: a row whose whole visibility
    // interval `[born, died)` lies below the watermark is unobservable at
    // every pinnable generation, so the log can forget it. This is what
    // bounds a long-running server's memory to the live rows plus the
    // snapshot horizon, not the whole commit history.
    for r in 0..st.log.len() {
        let log = &st.log[r];
        let n = log.born.len();
        if (0..n).all(|i| log.died.get(i) > w) {
            continue;
        }
        let mut fresh = RelLog {
            attrs: (0..log.attrs.len()).map(|_| ChunkedColumn::new()).collect(),
            born: ChunkedColumn::new(),
            died: ChunkedColumn::new(),
        };
        let mut pos: FastMap<Vec<u32>, u32> = FastMap::default();
        for i in 0..n {
            let died = log.died.get(i);
            if died <= w {
                continue;
            }
            let row: Vec<u32> = log.attrs.iter().map(|c| c.get(i)).collect();
            let new_pos = fresh.born.len() as u32;
            for (col, &id) in fresh.attrs.iter_mut().zip(&row) {
                col.push(id);
            }
            fresh.born.push(log.born.get(i));
            fresh.died.push(died);
            if died == NEVER {
                pos.insert(row, new_pos);
            }
        }
        st.log[r] = fresh;
        st.log_pos[r] = pos;
    }
}

/// A pinned, consistent read view of a [`CatalogState`] at one
/// generation. While the snapshot lives, its generation stays readable no
/// matter how far writers advance; dropping it releases the pin (and with
/// it the pruning backpressure it exerts).
#[derive(Debug)]
pub struct Snapshot {
    inner: Arc<Inner>,
    gen: u64,
}

impl Snapshot {
    /// The pinned generation.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Whether `t` is a live row of `rel` at the pinned generation.
    pub fn contains(&self, rel: &RelName, t: &Tuple) -> Result<bool, CoreError> {
        let r = self.inner.rel_index(rel, t)?;
        let st = self.inner.read();
        Ok(st
            .values
            .lookup_row(t.values())
            .is_some_and(|row| st.rows[r].count_at(&row, self.gen) > 0))
    }

    /// Total live rows at the pinned generation.
    pub fn total_rows(&self) -> usize {
        let st = self.inner.read();
        st.row_count.iter().map(|g| g.at(self.gen) as usize).sum()
    }

    /// The violation set at the pinned generation — comparable with
    /// [`full_violations`](super::full_violations) on
    /// [`Snapshot::to_database`].
    pub fn violations(&self) -> BTreeSet<ViolationKey> {
        // An empty `Delta` holds empty `Vec`s — no allocation happens.
        self.inner.violations_with(self.gen, &Delta::new())
    }

    /// Whether every dependency holds at the pinned generation —
    /// `O(log)` off the maintained violation counter, no key-space scan.
    pub fn is_consistent(&self) -> bool {
        self.inner.read().viol_count.at(self.gen) == 0
    }

    /// Per-dependency satisfaction at the pinned generation, in Σ order —
    /// `O(Σ)` off the maintained per-dependency counters, no key-space
    /// scan (see [`DepHealth`]).
    pub fn health(&self) -> Vec<DepHealth> {
        let st = self.inner.read();
        self.inner
            .sigma
            .iter()
            .enumerate()
            .map(|(i, dep)| DepHealth {
                dep: dep.clone(),
                violating: u64::from(st.dep_viol[i].at(self.gen)),
                tracked: u64::from(st.dep_keys[i].at(self.gen)),
            })
            .collect()
    }

    /// Materialize the pinned generation as a plain [`Database`] (tests
    /// and the differential oracle; `O(log)`).
    pub fn to_database(&self) -> Database {
        let st = self.inner.read();
        let mut db = Database::empty(self.inner.schema.clone());
        let mut row = Vec::new();
        for (r, scheme) in self.inner.schema.schemes().iter().enumerate() {
            let log = &st.log[r];
            for i in 0..log.born.len() {
                if log.born.get(i) <= self.gen && self.gen < log.died.get(i) {
                    row.clear();
                    row.extend(log.attrs.iter().map(|col| col.get(i)));
                    db.insert(scheme.name(), Tuple::new(st.values.resolve_row(&row)))
                        .expect("log rows match the schema");
                }
            }
        }
        db
    }

    /// Freeze one relation's row log into copy-on-write column snapshots:
    /// the returned [`FrozenRelation`] scans without taking the catalog
    /// lock and is immune to every later write (sealed chunks are shared;
    /// the mutable tail and any later `died` stamp are copied out).
    pub fn freeze(&self, rel: &RelName) -> Result<FrozenRelation, CoreError> {
        let r = self
            .inner
            .names
            .rel_id(rel)
            .ok_or_else(|| CoreError::UnknownRelation(rel.name().to_owned()))?
            .index();
        let st = self.inner.read();
        let log = &st.log[r];
        Ok(FrozenRelation {
            attrs: log.attrs.iter().map(ChunkedColumn::snapshot).collect(),
            born: log.born.snapshot(),
            died: log.died.snapshot(),
            gen: self.gen,
        })
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.inner.unpin(self.gen);
    }
}

/// A lock-free scan over one relation's rows as of a pinned generation:
/// chunked column snapshots of the append-only row log, filtered by the
/// `[born, died)` visibility interval.
#[derive(Debug)]
pub struct FrozenRelation {
    attrs: Vec<ChunkedColumnSnapshot<u32>>,
    born: ChunkedColumnSnapshot<u64>,
    died: ChunkedColumnSnapshot<u64>,
    gen: u64,
}

impl FrozenRelation {
    /// The interned-id rows visible at the frozen generation.
    pub fn id_rows(&self) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        for i in 0..self.born.len() {
            if self.born.get(i) <= self.gen && self.gen < self.died.get(i) {
                out.push(self.attrs.iter().map(|c| c.get(i)).collect());
            }
        }
        out
    }

    /// Number of visible rows at the frozen generation.
    pub fn len(&self) -> usize {
        (0..self.born.len())
            .filter(|&i| self.born.get(i) <= self.gen && self.gen < self.died.get(i))
            .count()
    }

    /// Whether no row is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One unit of client work against a [`CatalogState`]: a pinned
/// [`Snapshot`] plus staged, uncommitted mutations.
///
/// Staging takes no lock and is invisible to every other session;
/// [`Session::violations`] previews the effect of the staged delta
/// against the pinned snapshot in time proportional to the delta.
/// [`Session::commit`] applies the staging to the latest state under the
/// short writer critical section; [`Session::abort`] (or just dropping
/// the session) discards it without a trace.
#[derive(Debug)]
pub struct Session {
    snapshot: Snapshot,
    staged: Delta,
}

impl Session {
    /// The generation this session pinned at [`CatalogState::begin`].
    pub fn generation(&self) -> u64 {
        self.snapshot.gen
    }

    /// The session's pinned read view.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// The staged, uncommitted delta.
    pub fn staged(&self) -> &Delta {
        &self.staged
    }

    /// Per-dependency satisfaction at the session's pinned generation
    /// (staging is not reflected — health reports committed state).
    pub fn health(&self) -> Vec<DepHealth> {
        self.snapshot.health()
    }

    /// Stage an insertion (validated against the schema now, so commit
    /// cannot fail mid-batch).
    pub fn stage_insert(&mut self, rel: impl Into<RelName>, t: Tuple) -> Result<(), CoreError> {
        let rel = rel.into();
        self.snapshot.inner.rel_index(&rel, &t)?;
        self.staged.insert(rel, t);
        Ok(())
    }

    /// Stage a deletion (validated against the schema now).
    pub fn stage_delete(&mut self, rel: impl Into<RelName>, t: Tuple) -> Result<(), CoreError> {
        let rel = rel.into();
        self.snapshot.inner.rel_index(&rel, &t)?;
        self.staged.delete(rel, t);
        Ok(())
    }

    /// Stage a whole [`Delta`]. Every operation is validated before any
    /// is staged, so an error leaves the staging untouched.
    pub fn stage(&mut self, delta: &Delta) -> Result<(), CoreError> {
        for (rel, t) in delta.deletes.iter().chain(&delta.inserts) {
            self.snapshot.inner.rel_index(rel, t)?;
        }
        self.staged.deletes.extend_from_slice(&delta.deletes);
        self.staged.inserts.extend_from_slice(&delta.inserts);
        Ok(())
    }

    /// The violation set of *pinned snapshot + staged delta* — what the
    /// catalog would report if this session committed against its own
    /// snapshot. `O(delta + base violations)`.
    pub fn violations(&self) -> BTreeSet<ViolationKey> {
        self.snapshot
            .inner
            .violations_with(self.snapshot.gen, &self.staged)
    }

    /// Whether *pinned snapshot + staged delta* satisfies every
    /// dependency — `O(delta)`, independent of the database size: the
    /// base contributes only its maintained violation counter, and only
    /// keys the staged delta touches are re-evaluated. This is the
    /// latency-critical check of the serve loop; [`Session::violations`]
    /// is the full listing.
    pub fn is_consistent(&self) -> bool {
        self.snapshot
            .inner
            .consistent_with(self.snapshot.gen, &self.staged)
    }

    /// Commit the staged delta against the *latest* catalog state
    /// (deletes first, then inserts, both idempotent — see the
    /// [module docs](self) for the commit-order semantics). Consumes the
    /// session and releases its pin.
    ///
    /// Equivalent to [`Session::commit_tagged`] with no idempotency tag;
    /// panics if an installed [`CommitSink`] fails — durability-aware
    /// callers use `commit_tagged` and handle the error.
    pub fn commit(self) -> CommitOutcome {
        self.commit_tagged(None)
            .expect("commit sink failed; use commit_tagged to handle durability errors")
    }

    /// Commit the staged delta, optionally tagged `(client id, token)`
    /// for idempotent retry: if the catalog already applied a commit from
    /// `client` with the same `token`, the staged delta is discarded and
    /// the *original* outcome returned with
    /// [`replayed`](CommitOutcome::replayed) set — so a client that lost
    /// an acknowledgement can safely resend and never double-applies. The
    /// catalog remembers the most recent token per client; the table is
    /// checkpointed and write-ahead-logged with the rest of the state, so
    /// dedup survives a crash.
    ///
    /// When a [`CommitSink`] is installed, every effective commit is
    /// recorded inside the write lock before this method returns; see
    /// [`CommitSink`] for the failure contract behind the
    /// [`CoreError::Durability`] this can return.
    pub fn commit_tagged(self, client: Option<(&str, &str)>) -> Result<CommitOutcome, CoreError> {
        let inner = &*self.snapshot.inner;
        if self.staged.is_empty() && client.is_none() {
            // Empty-commit fast path: no lock, no index work, no bump.
            return Ok(CommitOutcome {
                generation: inner.generation.load(Ordering::Acquire),
                applied: DeltaOutcome::default(),
                replayed: false,
            });
        }
        if inner.sink_poisoned.load(Ordering::Acquire) {
            return Err(CoreError::Durability(
                "catalog is read-only: an earlier write-ahead-log failure \
                 poisoned the commit path (restart to recover)"
                    .into(),
            ));
        }
        let mut st = inner.write();
        // Idempotency check comes first, before anything is applied: a
        // retried commit must return the original ack, not re-apply.
        if let Some((c, t)) = client {
            if let Some(rec) = st.tokens.get(c) {
                if rec.token == t {
                    return Ok(CommitOutcome {
                        replayed: true,
                        ..rec.outcome
                    });
                }
            }
        }
        let gen = inner.generation.load(Ordering::Acquire) + 1;
        let w = inner.watermark.load(Ordering::Acquire).min(gen - 1);
        let mut applied = DeltaOutcome::default();
        for (rel, t) in &self.staged.deletes {
            let r = inner.rel_index(rel, t).expect("staged ops are validated");
            if inner.delete_row(&mut st, r, t.values(), gen, w) {
                applied.deleted += 1;
            }
        }
        for (rel, t) in &self.staged.inserts {
            let r = inner.rel_index(rel, t).expect("staged ops are validated");
            if inner.insert_row(&mut st, r, t.values(), gen, w) {
                applied.inserted += 1;
            }
        }
        // Ack-implies-durable: offer the effective commit to the sink
        // before the outcome (the ack) escapes the critical section.
        if applied != DeltaOutcome::default() {
            let mut sink = inner.sink.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(s) = sink.as_mut() {
                let record = CommitRecord {
                    generation: gen,
                    client,
                    delta: &self.staged,
                    applied,
                };
                if let Err(why) = s.record(&record) {
                    // The state is already stamped at `gen`; publish it so
                    // in-memory readers stay coherent, but poison the
                    // catalog — the durable log is now behind the memory
                    // image, and only a restart-and-recover closes the gap.
                    inner.sink_poisoned.store(true, Ordering::Release);
                    drop(sink);
                    finish_commit(inner, &mut st, gen, w, applied);
                    return Err(CoreError::Durability(format!(
                        "write-ahead log append failed ({why}); \
                         catalog is now read-only until restart"
                    )));
                }
            }
        }
        let outcome = CommitOutcome {
            generation: finish_commit(inner, &mut st, gen, w, applied),
            applied,
            replayed: false,
        };
        if let Some((c, t)) = client {
            st.tokens.insert(
                c.to_owned(),
                TokenRecord {
                    token: t.to_owned(),
                    outcome,
                },
            );
        }
        Ok(outcome)
        // `self.snapshot` drops here, releasing the pin.
    }

    /// Discard the staged delta and release the pin. Equivalent to
    /// dropping the session; spelled out so call sites read as the
    /// transaction protocol they implement.
    pub fn abort(self) {
        drop(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::full_violations;

    fn setup() -> (DatabaseSchema, Vec<Dependency>, CatalogState) {
        let schema = DatabaseSchema::parse(&["EMP(NAME, DEPT)", "DEPT(DNO, MGR)"]).unwrap();
        let sigma: Vec<Dependency> = vec![
            "EMP[DEPT] <= DEPT[DNO]".parse().unwrap(),
            "EMP: NAME -> DEPT".parse().unwrap(),
            "DEPT: DNO -> MGR".parse().unwrap(),
        ];
        let cat = CatalogState::new(&schema, &sigma).unwrap();
        (schema, sigma, cat)
    }

    /// The number of keys `dep` quantifies over in `db` (FD: distinct
    /// LHS groups; IND: distinct left projections), recomputed from
    /// scratch as the oracle for the maintained `tracked` counter.
    fn tracked_oracle(db: &Database, dep: &Dependency) -> u64 {
        let (rel, attrs) = match dep {
            Dependency::Fd(fd) => (&fd.rel, &fd.lhs),
            Dependency::Ind(ind) => (&ind.lhs_rel, &ind.lhs_attrs),
            other => panic!("catalog sigma holds FDs and INDs only, got {other}"),
        };
        let rel = db.relation(rel).unwrap();
        let cols = rel.scheme().columns(attrs).unwrap();
        rel.tuples()
            .map(|t| {
                cols.iter()
                    .map(|&c| t.values()[c].clone())
                    .collect::<Vec<_>>()
            })
            .collect::<BTreeSet<_>>()
            .len() as u64
    }

    /// A snapshot must agree with the full recheck of its own
    /// materialization, and a session preview with the full recheck of
    /// materialization + staged delta.
    fn check_snapshot(snap: &Snapshot, sigma: &[Dependency]) {
        let db = snap.to_database();
        let viols = full_violations(&db, sigma).unwrap();
        assert_eq!(
            snap.violations(),
            viols,
            "snapshot disagrees with full recheck at gen {}",
            snap.generation()
        );
        assert_eq!(
            snap.is_consistent(),
            snap.violations().is_empty(),
            "violation counter disagrees with the violation set at gen {}",
            snap.generation()
        );
        let health = snap.health();
        assert_eq!(health.len(), sigma.len());
        for (i, h) in health.iter().enumerate() {
            assert_eq!(h.dep, sigma[i], "health is reported in Σ order");
            let expect = viols
                .iter()
                .filter(|v| match v {
                    ViolationKey::Fd { dep, .. } | ViolationKey::Ind { dep, .. } => *dep == i,
                })
                .count() as u64;
            assert_eq!(
                h.violating,
                expect,
                "dep {i} violating count at gen {}",
                snap.generation()
            );
            assert_eq!(
                h.tracked,
                tracked_oracle(&db, &sigma[i]),
                "dep {i} tracked count at gen {}",
                snap.generation()
            );
            assert!((0.0..=1.0).contains(&h.ratio()));
        }
    }

    fn check_session(s: &Session, sigma: &[Dependency]) {
        let mut db = s.snapshot().to_database();
        db.apply_delta(s.staged()).unwrap();
        assert_eq!(
            s.violations(),
            full_violations(&db, sigma).unwrap(),
            "session preview disagrees with full recheck"
        );
        assert_eq!(
            s.is_consistent(),
            s.violations().is_empty(),
            "O(delta) consistency check disagrees with the preview set"
        );
    }

    #[test]
    fn staging_is_invisible_and_abort_leaves_no_trace() {
        let (_, sigma, cat) = setup();
        let mut s = cat.begin();
        s.stage_insert("EMP", Tuple::strs(&["h", "math"])).unwrap();
        s.stage_insert("DEPT", Tuple::strs(&["math", "gauss"]))
            .unwrap();
        check_session(&s, &sigma);
        assert!(s.violations().is_empty()); // covered insert pair

        let outside = cat.snapshot();
        assert_eq!(outside.total_rows(), 0);
        assert!(!outside
            .contains(&RelName::new("EMP"), &Tuple::strs(&["h", "math"]))
            .unwrap());

        s.abort();
        assert_eq!(cat.generation(), 0);
        assert_eq!(cat.snapshot().total_rows(), 0);
        check_snapshot(&cat.snapshot(), &sigma);
    }

    #[test]
    fn commit_publishes_and_old_snapshots_keep_their_view() {
        let (_, sigma, cat) = setup();
        let before = cat.snapshot();

        let mut s = cat.begin();
        s.stage_insert("EMP", Tuple::strs(&["h", "math"])).unwrap();
        assert_eq!(s.violations().len(), 1); // dangling dept, previewed
        check_session(&s, &sigma);
        let out = s.commit();
        assert_eq!(out.generation, 1);
        assert_eq!(out.applied.inserted, 1);

        // The pre-commit snapshot still reads generation 0.
        assert_eq!(before.total_rows(), 0);
        assert!(before.violations().is_empty());
        check_snapshot(&before, &sigma);

        // A fresh snapshot sees the committed row and its violation.
        let after = cat.snapshot();
        assert_eq!(after.total_rows(), 1);
        assert_eq!(after.violations().len(), 1);
        check_snapshot(&after, &sigma);
    }

    #[test]
    fn empty_commit_is_a_fast_path_and_noop_commit_keeps_generation() {
        let (_, _, cat) = setup();
        let out = cat.begin().commit();
        assert_eq!(out.generation, 0);
        assert_eq!(out.applied, DeltaOutcome::default());

        let mut s = cat.begin();
        s.stage_insert("EMP", Tuple::strs(&["h", "math"])).unwrap();
        assert_eq!(s.commit().generation, 1);

        // Duplicate insert + absent delete: all no-ops, no bump.
        let mut s2 = cat.begin();
        s2.stage_insert("EMP", Tuple::strs(&["h", "math"])).unwrap();
        s2.stage_delete("DEPT", Tuple::strs(&["ghost", "x"]))
            .unwrap();
        let out2 = s2.commit();
        assert_eq!(out2.applied, DeltaOutcome::default());
        assert_eq!(out2.generation, 1);
        assert_eq!(cat.generation(), 1);
    }

    #[test]
    fn commits_apply_in_commit_order_not_snapshot_order() {
        let (_, sigma, cat) = setup();
        // Two sessions pin the same generation; the second to commit sees
        // the first's rows (absolute presence ops — last writer wins).
        let mut a = cat.begin();
        let mut b = cat.begin();
        a.stage_insert("DEPT", Tuple::strs(&["math", "gauss"]))
            .unwrap();
        b.stage_delete("DEPT", Tuple::strs(&["math", "gauss"]))
            .unwrap();
        assert_eq!(a.commit().generation, 1);
        let out = b.commit(); // deletes the row a just inserted
        assert_eq!(out.applied.deleted, 1);
        assert_eq!(out.generation, 2);
        assert_eq!(cat.total_rows(), 0);
        check_snapshot(&cat.snapshot(), &sigma);
    }

    #[test]
    fn staging_validates_upfront_and_rejects_bad_ops() {
        let (_, _, cat) = setup();
        let mut s = cat.begin();
        assert!(s.stage_insert("GHOST", Tuple::ints(&[1])).is_err());
        assert!(s.stage_insert("EMP", Tuple::ints(&[1])).is_err()); // arity
        let mut bad = Delta::new();
        bad.insert_ints("EMP", &[1, 2]).insert_ints("NOPE", &[3]);
        assert!(s.stage(&bad).is_err());
        assert!(s.staged().is_empty(), "failed staging must stage nothing");
    }

    #[test]
    fn seed_is_atomic_on_error() {
        let (_, sigma, cat) = setup();
        let bad_schema =
            DatabaseSchema::parse(&["EMP(NAME, DEPT)", "DEPT(DNO, MGR)", "X(C)"]).unwrap();
        let mut bad = Database::empty(bad_schema);
        bad.insert_str("EMP", &[&["h", "math"], &["h", "cs"]])
            .unwrap();
        bad.insert_str("X", &[&["boom"]]).unwrap();
        assert!(matches!(cat.seed(&bad), Err(CoreError::UnknownRelation(_))));
        assert_eq!(cat.generation(), 0);
        assert_eq!(cat.total_rows(), 0);

        let mut good = Database::empty(cat.schema().clone());
        good.insert_str("DEPT", &[&["math", "gauss"]]).unwrap();
        good.insert_str("EMP", &[&["h", "math"], &["x", "bio"]])
            .unwrap();
        let out = cat.seed(&good).unwrap();
        assert_eq!(out.applied.inserted, 3);
        assert_eq!(out.generation, 1);
        let snap = cat.snapshot();
        assert_eq!(snap.violations().len(), 1); // ("bio") dangling
        check_snapshot(&snap, &sigma);
        assert_eq!(snap.to_database(), good);
    }

    #[test]
    fn frozen_scans_are_immune_to_later_commits() {
        let (_, _, cat) = setup();
        let mut s = cat.begin();
        for i in 0..2000i64 {
            s.stage_insert("DEPT", Tuple::ints(&[i, i])).unwrap();
        }
        s.commit();
        let snap = cat.snapshot();
        let frozen = snap.freeze(&RelName::new("DEPT")).unwrap();
        assert_eq!(frozen.len(), 2000);
        let before = frozen.id_rows();

        // Churn: delete half the rows, add new ones — the frozen view and
        // the pinned snapshot must not move.
        let mut churn = cat.begin();
        for i in 0..1000i64 {
            churn.stage_delete("DEPT", Tuple::ints(&[i, i])).unwrap();
            churn
                .stage_insert("DEPT", Tuple::ints(&[i + 10_000, i]))
                .unwrap();
        }
        churn.commit();
        assert_eq!(frozen.id_rows(), before);
        assert!(!frozen.is_empty());
        assert_eq!(snap.total_rows(), 2000);
        assert_eq!(cat.total_rows(), 2000);
        let now = snap.freeze(&RelName::new("DEPT")).unwrap();
        assert_eq!(now.id_rows(), before, "re-freezing a pinned gen is stable");
    }

    #[test]
    fn watermark_tracks_pins_and_vacuum_reclaims_history() {
        let (_, _, cat) = setup();
        let pinned = cat.snapshot(); // pins generation 0
        assert_eq!(cat.watermark(), 0);
        for i in 0..50i64 {
            let mut s = cat.begin();
            s.stage_insert("DEPT", Tuple::ints(&[i, i])).unwrap();
            if i > 0 {
                s.stage_delete("DEPT", Tuple::ints(&[i - 1, i - 1]))
                    .unwrap();
            }
            s.commit();
        }
        assert_eq!(cat.watermark(), 0, "oldest pin holds the watermark down");
        assert_eq!(pinned.total_rows(), 0);
        drop(pinned);
        assert_eq!(cat.watermark(), cat.generation());
        cat.vacuum();
        // After vacuuming at the head watermark only the one live row's
        // history survives in DEPT's membership index — and the row log
        // compacts down to it (49 dead rows forgotten).
        let snap = cat.snapshot();
        assert_eq!(snap.total_rows(), 1);
        assert!(snap
            .contains(&RelName::new("DEPT"), &Tuple::ints(&[49, 49]))
            .unwrap());
        {
            let st = cat.inner.read();
            let dept = cat
                .inner
                .names
                .rel_id(&RelName::new("DEPT"))
                .unwrap()
                .index();
            assert_eq!(
                st.log[dept].born.len(),
                1,
                "dead log rows were not compacted"
            );
            assert_eq!(st.log_pos[dept].len(), 1);
        }
        // The compacted log still materializes and freezes correctly.
        assert_eq!(snap.to_database().total_tuples(), 1);
        assert_eq!(snap.freeze(&RelName::new("DEPT")).unwrap().len(), 1);
    }

    #[test]
    fn health_tracks_satisfaction_ratios_across_commits() {
        let (_, sigma, cat) = setup();
        // Vacuous start: nothing tracked, everything 100% satisfied.
        for h in cat.snapshot().health() {
            assert_eq!((h.violating, h.tracked), (0, 0));
            assert_eq!(h.ratio(), 1.0);
        }
        // 10 employees in distinct departments, only 8 departments real:
        // the IND tracks 10 left keys and violates 2 of them.
        let mut s = cat.begin();
        for i in 0..10i64 {
            s.stage_insert("EMP", Tuple::strs(&[&format!("e{i}"), &format!("d{i}")]))
                .unwrap();
            if i < 8 {
                s.stage_insert("DEPT", Tuple::strs(&[&format!("d{i}"), "mgr"]))
                    .unwrap();
            }
        }
        s.commit();
        let before = cat.snapshot();
        let ind = &before.health()[0];
        assert_eq!((ind.violating, ind.tracked), (2, 10));
        assert!((ind.ratio() - 0.8).abs() < 1e-9);
        // One employee switches into a conflicting NAME → DEPT pair: the
        // FD over EMP degrades while the IND heals by one key.
        let mut s = cat.begin();
        s.stage_insert("EMP", Tuple::strs(&["e9", "d0"])).unwrap();
        s.stage_delete("EMP", Tuple::strs(&["e8", "d8"])).unwrap();
        s.commit();
        let after = cat.snapshot();
        let [ind, fd, _] = &after.health()[..] else {
            panic!("three deps in sigma")
        };
        assert_eq!((ind.violating, ind.tracked), (1, 9), "d8 gone, d9 dangling");
        assert_eq!((fd.violating, fd.tracked), (1, 9), "e9 maps to d9 and d0");
        assert!((fd.ratio() - 8.0 / 9.0).abs() < 1e-9);
        // The pre-commit snapshot still reports its own generation's
        // ratios: health is per-pinned-generation like every other read.
        assert_eq!(before.health()[0].violating, 2);
        check_snapshot(&before, &sigma);
        check_snapshot(&after, &sigma);
    }

    /// Satellite regression: a counter that oscillates 0 ↔ 1 for 10k
    /// commits under one long-lived pin must vacuum down to the few
    /// entries the pin can still observe, not retain one entry per
    /// commit (the watermark-based prune kept them all).
    #[test]
    fn oscillating_violation_history_is_pruned_under_a_live_pin() {
        let (_, _, cat) = setup();
        let pinned = cat.snapshot(); // holds the watermark at 0 throughout
        for i in 0..10_000i64 {
            let mut s = cat.begin();
            s.stage_insert("EMP", Tuple::strs(&["h", "ghost"])).unwrap();
            s.commit(); // dangling: viol_count 0 -> 1
            let mut s = cat.begin();
            s.stage_delete("EMP", Tuple::strs(&["h", "ghost"])).unwrap();
            s.commit(); // healed: viol_count 1 -> 0
            if i == 0 {
                // Depth grows while commits outpace the vacuum cadence.
                assert!(cat.inner.read().viol_count.depth() >= 2);
            }
        }
        cat.vacuum();
        {
            let st = cat.inner.read();
            assert!(
                st.viol_count.depth() <= 2,
                "oscillating viol_count history must prune to O(pins), got {}",
                st.viol_count.depth()
            );
            let ind_viol = &st.dep_viol[0];
            assert!(
                ind_viol.depth() <= 2,
                "per-dependency history must prune to O(pins), got {}",
                ind_viol.depth()
            );
        }
        // The pinned generation still reads its exact pre-churn state.
        assert!(pinned.is_consistent());
        assert_eq!(pinned.total_rows(), 0);
        assert_eq!(pinned.health()[0].tracked, 0);
        drop(pinned);
        assert!(cat.snapshot().is_consistent());
    }

    #[test]
    fn randomized_sessions_match_the_validator_and_full_recheck() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let (schema, sigma, cat) = setup();
        let mut rng = StdRng::seed_from_u64(0xCA7A_1065);
        let mut oracle = Database::empty(schema);
        for round in 0..40 {
            let mut s = cat.begin();
            let ops = rng.random_range(0..6u32);
            for _ in 0..ops {
                let name = format!("e{}", rng.random_range(0..8u32));
                let dept = format!("d{}", rng.random_range(0..4u32));
                let (rel, t) = if rng.random_range(0..2u32) == 0 {
                    ("EMP", Tuple::strs(&[&name, &dept]))
                } else {
                    ("DEPT", Tuple::strs(&[&dept, &name]))
                };
                if rng.random_range(0..3u32) == 0 {
                    s.stage_delete(rel, t).unwrap();
                } else {
                    s.stage_insert(rel, t).unwrap();
                }
            }
            check_session(&s, &sigma);
            if rng.random_range(0..4u32) == 0 {
                s.abort();
            } else {
                let staged = s.staged().clone();
                s.commit();
                oracle.apply_delta(&staged).unwrap();
            }
            let snap = cat.snapshot();
            assert_eq!(snap.to_database(), oracle, "round {round}");
            check_snapshot(&snap, &sigma);
        }
    }
}
