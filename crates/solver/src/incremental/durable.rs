//! Durable catalogs: recovery-on-start, the write-ahead commit sink,
//! and periodic checkpoints — the orchestration layer that ties
//! `depkit_core::wal`'s on-disk formats to the snapshot-isolated
//! [`CatalogState`].
//!
//! A durable catalog directory (`--data-dir` in `depkit serve`) holds
//! `catalog.ckpt` and `wal.log`; see the [`depkit_core::wal`] module
//! docs for the formats. [`Durability::open`] is the single entry point:
//!
//! 1. load the checkpoint if one exists ([`CatalogState::restore_from_doc`]),
//! 2. scan the WAL, replay every commit frame stamped after the
//!    checkpoint through the normal [`Session::commit_tagged`] path
//!    (asserting each replayed commit re-publishes exactly the logged
//!    generation), truncate a torn tail, refuse mid-log corruption,
//! 3. install the [`CommitSink`] that appends every future effective
//!    commit to the log inside the writer critical section,
//!
//! and report what it did as a [`RecoveryReport`]. After `open`, the
//! invariant the crash harness checks holds: *the catalog's observable
//! state equals a serial oracle replaying exactly the acknowledged
//! commits* — an ack is sent only after the commit frame is in the log
//! (and fsynced, under [`FsyncPolicy::Always`]).
//!
//! [`Durability::checkpoint`] quiesces the catalog (read lock held for
//! the duration), writes the checkpoint through the atomic tmp → rename
//! publish, then resets the WAL to an empty log based at the checkpoint
//! generation. A crash between the rename and the reset leaves a new
//! checkpoint with an old log; recovery handles it by skipping frames at
//! or below the checkpoint generation.
//!
//! [`Session::commit_tagged`]: super::catalog::Session::commit_tagged

use super::catalog::{CatalogState, CommitRecord, CommitSink};
use depkit_core::dependency::Dependency;
use depkit_core::error::CoreError;
use depkit_core::schema::DatabaseSchema;
use depkit_core::wal::{
    read_checkpoint, scan_wal, write_checkpoint_tmp, CommitFrame, CrashPlan, CrashPoint,
    FsyncPolicy, WalHeader, WalTail, WalWriter,
};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Checkpoint file name inside the data directory.
pub const CHECKPOINT_FILE: &str = "catalog.ckpt";
/// Write-ahead log file name inside the data directory.
pub const WAL_FILE: &str = "wal.log";

/// How a durable catalog writes its log and when it checkpoints.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// The data directory (created if missing).
    pub dir: PathBuf,
    /// When the WAL fsyncs — see [`FsyncPolicy`] for the trade-offs.
    pub fsync: FsyncPolicy,
    /// Take a checkpoint (and reset the log) every this many effective
    /// commits, as counted by [`Durability::note_commit`]. `0` disables
    /// automatic checkpoints (explicit [`Durability::checkpoint`] calls
    /// only — shutdown still drains).
    pub checkpoint_every: u64,
}

impl DurabilityConfig {
    /// The default policy for `dir`: fsync every commit, checkpoint
    /// every 512 effective commits.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            checkpoint_every: 512,
        }
    }
}

/// What [`Durability::open`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation of the checkpoint that seeded the catalog (`0` when
    /// there was none).
    pub checkpoint_gen: u64,
    /// Commit frames replayed from the WAL tail.
    pub replayed_commits: u64,
    /// Bytes truncated from a torn WAL tail, when one was found.
    pub wal_tail_dropped: Option<u64>,
    /// `true` when the directory held no prior state at all — the caller
    /// seeds the catalog and should checkpoint afterwards so the seed
    /// itself is durable.
    pub fresh: bool,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovered: checkpoint_gen={}, replayed_commits={}",
            self.checkpoint_gen, self.replayed_commits
        )?;
        if let Some(n) = self.wal_tail_dropped {
            write!(f, ", torn_tail_bytes={n}")?;
        }
        if self.fresh {
            write!(f, ", fresh=true")?;
        }
        Ok(())
    }
}

/// The mutable half shared between the commit sink and checkpoints.
#[derive(Debug)]
struct WalState {
    writer: WalWriter,
}

/// The [`CommitSink`] a durable catalog runs: append the commit frame,
/// fire the `after-wal-write` crash point. Runs inside the catalog's
/// writer critical section, so frames land in commit order.
#[derive(Debug)]
struct WalSink {
    shared: Arc<Mutex<WalState>>,
    crash: Arc<CrashPlan>,
}

impl CommitSink for WalSink {
    fn record(&mut self, rec: &CommitRecord<'_>) -> Result<(), String> {
        let frame = CommitFrame {
            generation: rec.generation,
            client: rec.client.map(|(c, _)| c.to_owned()).unwrap_or_default(),
            token: rec.client.map(|(_, t)| t.to_owned()).unwrap_or_default(),
            delta: rec.delta.clone(),
        };
        let mut ws = self.shared.lock().unwrap_or_else(|e| e.into_inner());
        ws.writer
            .append_commit(&frame)
            .map_err(|e| format!("wal append at generation {}: {e}", rec.generation))?;
        drop(ws);
        self.crash.fire(CrashPoint::AfterWalAppend);
        Ok(())
    }
}

/// Handle on a durable catalog's on-disk side: the WAL writer shared
/// with the installed sink, the checkpoint cadence counter, and the
/// crash-injection plan. Obtained from [`Durability::open`]; share it
/// with `Arc` (the serve layer hands one to every connection thread).
#[derive(Debug)]
pub struct Durability {
    cfg: DurabilityConfig,
    ckpt_path: PathBuf,
    wal_path: PathBuf,
    shared: Arc<Mutex<WalState>>,
    crash: Arc<CrashPlan>,
    /// Effective commits since the last checkpoint.
    since_checkpoint: AtomicU64,
    /// Serializes checkpoints (the commit path never takes this).
    ckpt: Mutex<()>,
}

fn io_err(what: impl fmt::Display) -> CoreError {
    CoreError::Durability(what.to_string())
}

impl Durability {
    /// Open (or create) the durable catalog in `cfg.dir`: restore the
    /// newest valid checkpoint, replay the WAL tail, truncate a torn
    /// tail, install the write-ahead [`CommitSink`], and report what
    /// happened. Refuses — with a diagnostic naming the file — on
    /// mid-log corruption, a damaged checkpoint, or a spec that does not
    /// match `(schema, sigma)`.
    pub fn open(
        schema: &DatabaseSchema,
        sigma: &[Dependency],
        cfg: DurabilityConfig,
    ) -> Result<(CatalogState, Arc<Durability>, RecoveryReport), CoreError> {
        std::fs::create_dir_all(&cfg.dir)
            .map_err(|e| io_err(format!("cannot create data dir {}: {e}", cfg.dir.display())))?;
        let ckpt_path = cfg.dir.join(CHECKPOINT_FILE);
        let wal_path = cfg.dir.join(WAL_FILE);
        let decls: Vec<String> = schema.schemes().iter().map(|s| s.to_string()).collect();
        let sigma_strs: Vec<String> = sigma.iter().map(|d| d.to_string()).collect();

        let (cat, checkpoint_gen) = if ckpt_path.exists() {
            let doc = read_checkpoint(&ckpt_path).map_err(io_err)?;
            let gen = doc.generation;
            (CatalogState::restore_from_doc(schema, sigma, &doc)?, gen)
        } else {
            (CatalogState::new(schema, sigma)?, 0)
        };

        let mut replayed = 0u64;
        let mut wal_tail_dropped = None;
        let had_wal = wal_path.exists();
        let writer = if had_wal {
            let scan = scan_wal(&wal_path).map_err(io_err)?;
            if scan.header.schema != decls || scan.header.sigma != sigma_strs {
                return Err(io_err(format!(
                    "{}: write-ahead log was opened for a different spec \
                     (log declares {:?} / {:?})",
                    wal_path.display(),
                    scan.header.schema,
                    scan.header.sigma
                )));
            }
            for frame in &scan.commits {
                // Frames at or below the restored generation are already
                // inside the checkpoint (the crash-between-rename-and-
                // reset window); everything above replays in order.
                if frame.generation <= cat.generation() {
                    continue;
                }
                let mut s = cat.begin();
                s.stage(&frame.delta)?;
                let client = (!frame.client.is_empty())
                    .then_some((frame.client.as_str(), frame.token.as_str()));
                let out = s.commit_tagged(client)?;
                if out.generation != frame.generation {
                    return Err(io_err(format!(
                        "{}: replaying the commit frame stamped generation {} \
                         produced generation {} — the log does not continue the \
                         checkpoint it sits beside",
                        wal_path.display(),
                        frame.generation,
                        out.generation
                    )));
                }
                replayed += 1;
            }
            let valid_len = match scan.tail {
                WalTail::Clean => None,
                WalTail::Torn { offset, dropped } => {
                    wal_tail_dropped = Some(dropped);
                    Some(offset)
                }
            };
            WalWriter::open_append(&wal_path, valid_len, cfg.fsync).map_err(io_err)?
        } else {
            let header = WalHeader {
                base_gen: cat.generation(),
                schema: decls,
                sigma: sigma_strs,
            };
            WalWriter::create(&wal_path, &header, cfg.fsync).map_err(io_err)?
        };

        let crash = Arc::new(CrashPlan::from_env().map_err(CoreError::Durability)?);
        let shared = Arc::new(Mutex::new(WalState { writer }));
        cat.set_commit_sink(Some(Box::new(WalSink {
            shared: Arc::clone(&shared),
            crash: Arc::clone(&crash),
        })));
        let report = RecoveryReport {
            checkpoint_gen,
            replayed_commits: replayed,
            wal_tail_dropped,
            fresh: !had_wal && checkpoint_gen == 0,
        };
        let dur = Arc::new(Durability {
            cfg,
            ckpt_path,
            wal_path,
            shared,
            crash,
            since_checkpoint: AtomicU64::new(0),
            ckpt: Mutex::new(()),
        });
        Ok((cat, dur, report))
    }

    /// The crash-injection plan parsed from `DEPKIT_CRASH` at open —
    /// shared so the serve layer fires the `before-ack` point from the
    /// same occurrence counter world.
    pub fn crash_plan(&self) -> &Arc<CrashPlan> {
        &self.crash
    }

    /// The data directory this catalog persists into.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Count one acknowledged commit toward the checkpoint cadence and
    /// checkpoint when the configured interval is reached. Called by the
    /// serve layer after each successful commit, outside the reply path's
    /// latency budget only in the interval tick that actually
    /// checkpoints.
    pub fn note_commit(&self, cat: &CatalogState) -> Result<(), CoreError> {
        if self.cfg.checkpoint_every == 0 {
            return Ok(());
        }
        let n = self.since_checkpoint.fetch_add(1, Ordering::AcqRel) + 1;
        if n >= self.cfg.checkpoint_every {
            self.checkpoint(cat)?;
        }
        Ok(())
    }

    /// Take a checkpoint now: quiesce the catalog, publish the state
    /// through the atomic tmp → rename protocol, and reset the WAL to an
    /// empty log based at the checkpoint generation. Commits wait while
    /// this runs (the quiesce holds the catalog's read lock); crash
    /// points `mid-checkpoint` and `after-checkpoint-rename` fire here.
    pub fn checkpoint(&self, cat: &CatalogState) -> Result<u64, CoreError> {
        let _serial = self.ckpt.lock().unwrap_or_else(|e| e.into_inner());
        let gen = cat
            .quiesced(|doc| -> std::io::Result<u64> {
                let tmp = write_checkpoint_tmp(&self.ckpt_path, doc)?;
                self.crash.fire(CrashPoint::MidCheckpoint);
                std::fs::rename(&tmp, &self.ckpt_path)?;
                self.crash.fire(CrashPoint::AfterCheckpointRename);
                let header = WalHeader {
                    base_gen: doc.generation,
                    schema: doc.schema.clone(),
                    sigma: doc.sigma.clone(),
                };
                let writer = WalWriter::create(&self.wal_path, &header, self.cfg.fsync)?;
                let mut ws = self.shared.lock().unwrap_or_else(|e| e.into_inner());
                ws.writer = writer;
                Ok(doc.generation)
            })
            .map_err(|e| io_err(format!("checkpoint of {}: {e}", self.ckpt_path.display())))?;
        self.since_checkpoint.store(0, Ordering::Release);
        Ok(gen)
    }

    /// Force the WAL to stable storage (graceful-shutdown path under
    /// the `interval`/`never` fsync policies).
    pub fn sync(&self) -> Result<(), CoreError> {
        let mut ws = self.shared.lock().unwrap_or_else(|e| e.into_inner());
        ws.writer
            .sync()
            .map_err(|e| io_err(format!("wal sync: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::prelude::*;

    fn spec() -> (DatabaseSchema, Vec<Dependency>) {
        let schema = DatabaseSchema::parse(&["EMP(NAME, DEPT)", "DEPT(DNO)"]).unwrap();
        let sigma = vec!["EMP[DEPT] <= DEPT[DNO]".parse().unwrap()];
        (schema, sigma)
    }

    fn tdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("depkit-durable-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn cfg(dir: &Path) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.to_path_buf(),
            fsync: FsyncPolicy::Never,
            checkpoint_every: 0,
        }
    }

    #[test]
    fn fresh_open_commits_survive_reopen() {
        let (schema, sigma) = spec();
        let dir = tdir("reopen");
        let (cat, _dur, rep) = Durability::open(&schema, &sigma, cfg(&dir)).unwrap();
        assert!(rep.fresh);
        for i in 0..5 {
            let mut s = cat.begin();
            s.stage_insert("DEPT", Tuple::ints(&[i])).unwrap();
            if i % 2 == 0 {
                s.stage_insert(
                    "EMP",
                    Tuple::new(vec![Value::str(format!("e{i}")), Value::Int(i)]),
                )
                .unwrap();
            }
            s.commit_tagged(None).unwrap();
        }
        let before_db = cat.snapshot().to_database();
        let before_health = cat.snapshot().health();
        let before_gen = cat.generation();
        drop(cat);

        // A process crash is modeled by reopening without any shutdown.
        let (cat2, _dur2, rep2) = Durability::open(&schema, &sigma, cfg(&dir)).unwrap();
        assert!(!rep2.fresh);
        assert_eq!(rep2.checkpoint_gen, 0);
        assert_eq!(rep2.replayed_commits, 5);
        assert_eq!(cat2.generation(), before_gen);
        assert_eq!(cat2.snapshot().to_database(), before_db);
        assert_eq!(cat2.snapshot().health(), before_health);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_resets_the_wal_and_reopen_skips_it() {
        let (schema, sigma) = spec();
        let dir = tdir("ckpt");
        let (cat, dur, _) = Durability::open(&schema, &sigma, cfg(&dir)).unwrap();
        for i in 0..4 {
            let mut s = cat.begin();
            s.stage_insert("DEPT", Tuple::ints(&[i])).unwrap();
            s.commit_tagged(None).unwrap();
        }
        let gen = dur.checkpoint(&cat).unwrap();
        assert_eq!(gen, 4);
        // Two more commits land in the fresh post-checkpoint log.
        for i in 10..12 {
            let mut s = cat.begin();
            s.stage_insert("DEPT", Tuple::ints(&[i])).unwrap();
            s.commit_tagged(None).unwrap();
        }
        let before = cat.snapshot().to_database();
        drop(cat);
        let (cat2, _d, rep) = Durability::open(&schema, &sigma, cfg(&dir)).unwrap();
        assert_eq!(rep.checkpoint_gen, 4);
        assert_eq!(rep.replayed_commits, 2);
        assert_eq!(cat2.snapshot().to_database(), before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_tokens_deduplicate_across_restart() {
        let (schema, sigma) = spec();
        let dir = tdir("tokens");
        let (cat, _dur, _) = Durability::open(&schema, &sigma, cfg(&dir)).unwrap();
        let mut s = cat.begin();
        s.stage_insert("DEPT", Tuple::ints(&[7])).unwrap();
        let first = s.commit_tagged(Some(("alice", "tok-1"))).unwrap();
        assert!(!first.replayed);
        drop(cat);
        let (cat2, _d, _) = Durability::open(&schema, &sigma, cfg(&dir)).unwrap();
        // The retry after the (simulated) lost ack must not double-apply.
        let mut s = cat2.begin();
        s.stage_insert("DEPT", Tuple::ints(&[7])).unwrap();
        let retry = s.commit_tagged(Some(("alice", "tok-1"))).unwrap();
        assert!(retry.replayed);
        assert_eq!(retry.generation, first.generation);
        assert_eq!(retry.applied, first.applied);
        assert_eq!(cat2.generation(), first.generation);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_refuses_a_different_spec() {
        let (schema, sigma) = spec();
        let dir = tdir("spec");
        {
            let (cat, _dur, _) = Durability::open(&schema, &sigma, cfg(&dir)).unwrap();
            let mut s = cat.begin();
            s.stage_insert("DEPT", Tuple::ints(&[1])).unwrap();
            s.commit_tagged(None).unwrap();
        }
        let other = DatabaseSchema::parse(&["EMP(NAME, DEPT)", "DEPT(DNO, CITY)"]).unwrap();
        let err = Durability::open(&other, &sigma, cfg(&dir)).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("different spec"), "got: {msg}");
        assert!(msg.contains("wal.log"), "names the file: {msg}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
