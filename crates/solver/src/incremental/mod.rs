//! Incremental FD/IND validation for mutating databases.
//!
//! The paper frames INDs as *the* referential-integrity constraints a live
//! database must maintain (Section 1: "each manager's department is an
//! existing department"), and the checking workload — not implication — is
//! what a serving system executes on every write. Re-running the
//! [`depkit_core::satisfy`] scans after each mutation costs time
//! proportional to the whole database; this module maintains constraint
//! state *incrementally*, so a [`Delta`] of `k` row changes is validated in
//! `O(k · Σ proj)` hash work, independent of the total row count.
//!
//! [`Validator`] compiles a `(Schema, Σ_FD, Σ_IND)` pair once:
//!
//! * every relation's live rows are kept as raw `u32` rows in a
//!   [`RowSet`] addressed by scheme index — the same row representation the
//!   Rule (*) chase of `depkit-chase` uses, with tuple values interned
//!   through a [`ValueInterner`];
//! * each IND `R[X] ⊆ S[Y]` carries two refcounted
//!   [`ProjectionIndex`]es (the multiset of `X`-projections of `r` and of
//!   `Y`-projections of `s`); a key is *violating* iff its left count is
//!   positive and its right count is zero, and only the `0 ↔ 1` transitions
//!   reported by the index can flip that;
//! * each FD `R: X → Y` carries a witness map `X-projection →`
//!   [`ProjectionIndex`] of `Y`-projections; a key is violating iff its
//!   group holds ≥ 2 distinct `Y`-projections.
//!
//! [`full_violations`] is the from-scratch reference path: it recomputes the
//! same normalized [`ViolationKey`] set by scanning the whole database.
//! The differential-testing contract — *incremental == full recheck after
//! every delta* — is enforced by `tests/incremental_vs_full.rs` and is the
//! pattern every future serving feature should follow.
//!
//! [`Validator`] owns its state exclusively — one writer, no readers
//! during writes. The [`catalog`] submodule refactors the same engine
//! into a snapshot-isolated form ([`CatalogState`] / [`Session`] /
//! [`Snapshot`]) where any number of sessions stage, preview, and commit
//! deltas against one shared catalog — the shape `depkit serve` runs.

pub mod catalog;
pub mod durable;

pub use catalog::{
    CatalogState, CommitOutcome, CommitRecord, CommitSink, DepHealth, FrozenRelation, Session,
    Snapshot,
};
pub use durable::{Durability, DurabilityConfig, RecoveryReport};

use depkit_core::column::{ColumnCursor, RelationColumns};
use depkit_core::database::Database;
use depkit_core::delta::{Delta, DeltaOutcome};
use depkit_core::dependency::Dependency;
use depkit_core::error::CoreError;
use depkit_core::hashing::FastMap;
use depkit_core::index::{ProjectionIndex, RowSet, ValueInterner};
use depkit_core::intern::Catalog;
use depkit_core::relation::Tuple;
use depkit_core::schema::{DatabaseSchema, RelName};
use depkit_core::value::Value;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// A normalized, order-independent identification of one constraint
/// violation, shared by the incremental and full-recheck paths.
///
/// `dep` is the index of the violated dependency in the `Σ` slice the
/// engine was built from; the payload pins down *where* it fails, so two
/// violation sets are comparable as plain [`BTreeSet`]s.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationKey {
    /// FD `Σ[dep]` fails on the group of rows whose LHS projection is
    /// `lhs` (that group holds at least two distinct RHS projections).
    Fd {
        /// Index into `Σ`.
        dep: usize,
        /// The LHS projection shared by the conflicting rows.
        lhs: Vec<Value>,
    },
    /// IND `Σ[dep]` fails on `missing`: some left-side row projects to it
    /// but no right-side row does.
    Ind {
        /// Index into `Σ`.
        dep: usize,
        /// The uncovered projection.
        missing: Vec<Value>,
    },
}

fn write_values(f: &mut fmt::Formatter<'_>, vs: &[Value]) -> fmt::Result {
    f.write_str("(")?;
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{v}")?;
    }
    f.write_str(")")
}

impl fmt::Display for ViolationKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKey::Fd { dep, lhs } => {
                write!(f, "FD #{dep} violated: key group ")?;
                write_values(f, lhs)?;
                write!(f, " maps to multiple RHS values")
            }
            ViolationKey::Ind { dep, missing } => {
                write!(f, "IND #{dep} violated: projection ")?;
                write_values(f, missing)?;
                write!(f, " has no covering right-side row")
            }
        }
    }
}

/// Per-FD incremental state: `X`-projection → refcounted multiset of
/// `Y`-projections, plus the set of currently violating `X` keys.
#[derive(Debug, Clone)]
struct CompiledFd {
    /// Index into `Σ`.
    dep: usize,
    lhs_cols: Vec<usize>,
    rhs_cols: Vec<usize>,
    groups: FastMap<Vec<u32>, ProjectionIndex>,
    violating: BTreeSet<Vec<u32>>,
}

/// Per-IND incremental state: refcounted left/right projection indexes plus
/// the set of keys with positive left count and zero right count.
#[derive(Debug, Clone)]
struct CompiledInd {
    /// Index into `Σ`.
    dep: usize,
    lhs_cols: Vec<usize>,
    rhs_cols: Vec<usize>,
    left: ProjectionIndex,
    right: ProjectionIndex,
    violating: BTreeSet<Vec<u32>>,
}

fn project(row: &[u32], cols: &[usize]) -> Vec<u32> {
    cols.iter().map(|&c| row[c]).collect()
}

/// The incremental FD/IND validation engine.
///
/// Construction compiles `(Schema, Σ)` into per-relation watcher lists and
/// the index structures described in the [module docs](self); afterwards
/// [`Validator::apply`] ingests [`Delta`] batches and keeps the violation
/// state exact, in time proportional to the delta rather than the database.
///
/// # Examples
///
/// The delta-validate round trip — seed a database, break referential
/// integrity, repair it:
///
/// ```
/// use depkit_core::prelude::*;
/// use depkit_solver::incremental::Validator;
///
/// let schema = DatabaseSchema::parse(&["EMP(NAME, DEPT)", "DEPT(DNO)"]).unwrap();
/// let sigma: Vec<Dependency> = vec![
///     "EMP[DEPT] <= DEPT[DNO]".parse().unwrap(),
///     "EMP: NAME -> DEPT".parse().unwrap(),
/// ];
/// let mut v = Validator::new(&schema, &sigma).unwrap();
///
/// let mut db = Database::empty(schema);
/// db.insert_str("DEPT", &[&["math"]]).unwrap();
/// db.insert_str("EMP", &[&["hilbert", "math"]]).unwrap();
/// v.seed(&db).unwrap();
/// assert!(v.is_consistent());
///
/// // A write that dangles: hausdorff joins a department that doesn't exist.
/// let mut bad = Delta::new();
/// bad.insert("EMP", Tuple::strs(&["hausdorff", "topology"]));
/// v.apply(&bad).unwrap();
/// assert_eq!(v.violation_count(), 1);
///
/// // Repair by creating the department; the violation clears.
/// let mut fix = Delta::new();
/// fix.insert("DEPT", Tuple::strs(&["topology"]));
/// v.apply(&fix).unwrap();
/// assert!(v.is_consistent());
/// ```
#[derive(Debug, Clone)]
pub struct Validator {
    schema: DatabaseSchema,
    sigma: Vec<Dependency>,
    catalog: Catalog,
    values: ValueInterner,
    /// Live rows per relation, addressed by scheme index (= `RelId::index`,
    /// the same addressing the Rule (*) chase uses).
    rows: Vec<RowSet>,
    fds: Vec<CompiledFd>,
    inds: Vec<CompiledInd>,
    /// `fd_watch[rel]` = indices into `fds` whose relation is `rel`.
    fd_watch: Vec<Vec<u32>>,
    /// `ind_left_watch[rel]` = indices into `inds` whose left side is `rel`.
    ind_left_watch: Vec<Vec<u32>>,
    /// `ind_right_watch[rel]` = indices into `inds` whose right side is `rel`.
    ind_right_watch: Vec<Vec<u32>>,
}

impl Validator {
    /// Compile a validator for `sigma` over `schema`, starting from the
    /// empty database.
    ///
    /// `sigma` may contain FDs and INDs only; any other dependency kind is
    /// rejected with [`CoreError::UnsupportedDependency`] (the offline
    /// [`depkit_core::satisfy`] checker handles RDs and EMVDs).
    pub fn new(schema: &DatabaseSchema, sigma: &[Dependency]) -> Result<Self, CoreError> {
        let catalog = Catalog::from_schema(schema);
        let n = schema.schemes().len();
        let mut fds = Vec::new();
        let mut inds = Vec::new();
        let mut fd_watch = vec![Vec::new(); n];
        let mut ind_left_watch = vec![Vec::new(); n];
        let mut ind_right_watch = vec![Vec::new(); n];
        for (dep, d) in sigma.iter().enumerate() {
            d.is_well_formed(schema)?;
            match d {
                Dependency::Fd(fd) => {
                    let scheme = schema.require(&fd.rel)?;
                    let rel = schema.scheme_index(&fd.rel).expect("well-formed");
                    fd_watch[rel].push(fds.len() as u32);
                    fds.push(CompiledFd {
                        dep,
                        lhs_cols: scheme.columns(&fd.lhs)?,
                        rhs_cols: scheme.columns(&fd.rhs)?,
                        groups: FastMap::default(),
                        violating: BTreeSet::new(),
                    });
                }
                Dependency::Ind(ind) => {
                    let ls = schema.require(&ind.lhs_rel)?;
                    let rs = schema.require(&ind.rhs_rel)?;
                    let lhs_rel = schema.scheme_index(&ind.lhs_rel).expect("well-formed");
                    let rhs_rel = schema.scheme_index(&ind.rhs_rel).expect("well-formed");
                    ind_left_watch[lhs_rel].push(inds.len() as u32);
                    ind_right_watch[rhs_rel].push(inds.len() as u32);
                    inds.push(CompiledInd {
                        dep,
                        lhs_cols: ls.columns(&ind.lhs_attrs)?,
                        rhs_cols: rs.columns(&ind.rhs_attrs)?,
                        left: ProjectionIndex::new(),
                        right: ProjectionIndex::new(),
                        violating: BTreeSet::new(),
                    });
                }
                other => {
                    return Err(CoreError::UnsupportedDependency(format!(
                        "incremental validator handles FDs and INDs only, got `{other}`"
                    )))
                }
            }
        }
        Ok(Validator {
            schema: schema.clone(),
            sigma: sigma.to_vec(),
            catalog,
            values: ValueInterner::new(),
            rows: (0..n).map(|_| RowSet::new()).collect(),
            fds,
            inds,
            fd_watch,
            ind_left_watch,
            ind_right_watch,
        })
    }

    /// The schema the validator was compiled for.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// The dependency set the validator maintains ([`ViolationKey::Fd::dep`]
    /// and [`ViolationKey::Ind::dep`] index into this slice).
    pub fn sigma(&self) -> &[Dependency] {
        &self.sigma
    }

    /// Total number of live rows across all relations.
    pub fn total_rows(&self) -> usize {
        self.rows.iter().map(RowSet::len).sum()
    }

    /// Number of distinct values currently interned — bounded by the
    /// values of live rows (deleted rows release their references and the
    /// slots are recycled), so long-running churn does not grow memory.
    pub fn live_values(&self) -> usize {
        self.values.len()
    }

    /// Bulk-load an existing database (equivalent to applying one big
    /// insert-only delta). The database must be over the validator's
    /// schema.
    ///
    /// Unlike [`Validator::apply`], which pays per-row watcher dispatch,
    /// seeding builds each relation's effective rows as struct-of-arrays
    /// columns ([`RelationColumns`]) and then fills every watching index
    /// with one contiguous column scan per constraint — projection keys
    /// are gathered into a reused buffer and cloned into the tables only
    /// on their first occurrence ([`ProjectionIndex::add_ref`]). The
    /// violation sets of the touched constraints are recomputed exactly
    /// from the final counts, so the post-seed state is identical to the
    /// row-at-a-time path.
    pub fn seed(&mut self, db: &Database) -> Result<DeltaOutcome, CoreError> {
        let mut out = DeltaOutcome::default();
        self.values.reserve(
            db.relations()
                .iter()
                .map(|r| r.len() * r.scheme().arity())
                .sum(),
        );
        // Resolve and validate every relation *before* mutating anything:
        // a mid-seed error must not leave index counts updated but the
        // violation-set recompute (after this loop) skipped.
        let mut rel_indices = Vec::with_capacity(db.relations().len());
        for relation in db.relations() {
            let name = relation.scheme().name();
            let r = self
                .catalog
                .rel_id(name)
                .ok_or_else(|| CoreError::UnknownRelation(name.name().to_owned()))?
                .index();
            let arity = self.schema.schemes()[r].arity();
            if relation.scheme().arity() != arity && !relation.is_empty() {
                return Err(CoreError::TupleArity {
                    relation: name.name().to_owned(),
                    expected: arity,
                    actual: relation.scheme().arity(),
                });
            }
            rel_indices.push(r);
        }
        let mut touched_fds: BTreeSet<usize> = BTreeSet::new();
        let mut touched_inds: BTreeSet<usize> = BTreeSet::new();
        for (relation, &r) in db.relations().iter().zip(&rel_indices) {
            // Intern and insert the effective rows, accumulating them
            // column-at-a-time for the bulk index passes below.
            let arity = self.schema.schemes()[r].arity();
            let mut cols = RelationColumns::with_capacity(arity, relation.len());
            for t in relation.tuples() {
                let row = self.values.intern_row(t.values());
                if self.rows[r].insert(row.clone()) {
                    self.values.retain_row(&row);
                    cols.push_row(&row);
                    out.inserted += 1;
                }
            }
            if cols.is_empty() {
                continue;
            }
            let n = cols.row_count();
            let mut key = Vec::new();
            let mut val = Vec::new();
            for w in 0..self.fd_watch[r].len() {
                let fi = self.fd_watch[r][w] as usize;
                touched_fds.insert(fi);
                let f = &mut self.fds[fi];
                // Group the new rows by their LHS projection first: the
                // persistent witness map is probed once per class, not
                // once per row.
                let rhs = ColumnCursor::new(&cols, &f.rhs_cols);
                for class in cols.group_by(&f.lhs_cols) {
                    cols.gather(&f.lhs_cols, class[0] as usize, &mut key);
                    if !f.groups.contains_key(key.as_slice()) {
                        f.groups.insert(key.clone(), ProjectionIndex::new());
                    }
                    let group = f.groups.get_mut(key.as_slice()).expect("just inserted");
                    for &row in &class {
                        rhs.fill(row as usize, &mut val);
                        group.add_ref(&val);
                    }
                }
            }
            for w in 0..self.ind_left_watch[r].len() {
                let ii = self.ind_left_watch[r][w] as usize;
                touched_inds.insert(ii);
                let i = &mut self.inds[ii];
                let lhs = ColumnCursor::new(&cols, &i.lhs_cols);
                for row in 0..n {
                    lhs.fill(row, &mut key);
                    i.left.add_ref(&key);
                }
            }
            for w in 0..self.ind_right_watch[r].len() {
                let ii = self.ind_right_watch[r][w] as usize;
                touched_inds.insert(ii);
                let i = &mut self.inds[ii];
                let rhs = ColumnCursor::new(&cols, &i.rhs_cols);
                for row in 0..n {
                    rhs.fill(row, &mut key);
                    i.right.add_ref(&key);
                }
            }
        }
        // Recompute the violation sets of the touched constraints from the
        // final counts — exact regardless of what was live before the seed.
        for fi in touched_fds {
            let f = &mut self.fds[fi];
            f.violating = f
                .groups
                .iter()
                .filter(|(_, g)| g.distinct() >= 2)
                .map(|(k, _)| k.clone())
                .collect();
        }
        for ii in touched_inds {
            let i = &mut self.inds[ii];
            i.violating = i
                .left
                .keys()
                .filter(|k| i.right.count(k) == 0)
                .cloned()
                .collect();
        }
        Ok(out)
    }

    /// Apply one mutation batch: deletions first, then insertions (the
    /// [`Database::apply_delta`] convention). Returns how many operations
    /// changed the live row sets; no-op operations cost one hash lookup and
    /// touch no index.
    ///
    /// Runs in time proportional to the delta: each effective row change
    /// updates only the constraints watching its relation.
    pub fn apply(&mut self, delta: &Delta) -> Result<DeltaOutcome, CoreError> {
        let mut out = DeltaOutcome::default();
        for (rel, t) in &delta.deletes {
            if self.delete_tuple(rel, t)? {
                out.deleted += 1;
            }
        }
        for (rel, t) in &delta.inserts {
            if self.insert_tuple(rel, t)? {
                out.inserted += 1;
            }
        }
        Ok(out)
    }

    /// Whether every dependency of `Σ` currently holds.
    pub fn is_consistent(&self) -> bool {
        self.fds.iter().all(|f| f.violating.is_empty())
            && self.inds.iter().all(|i| i.violating.is_empty())
    }

    /// Number of violating keys across all dependencies.
    pub fn violation_count(&self) -> usize {
        self.fds.iter().map(|f| f.violating.len()).sum::<usize>()
            + self.inds.iter().map(|i| i.violating.len()).sum::<usize>()
    }

    /// The current violation set, resolved back to [`Value`]s — comparable
    /// with [`full_violations`] on the equivalent database.
    pub fn violations(&self) -> BTreeSet<ViolationKey> {
        let mut out = BTreeSet::new();
        for f in &self.fds {
            for key in &f.violating {
                out.insert(ViolationKey::Fd {
                    dep: f.dep,
                    lhs: self.values.resolve_row(key),
                });
            }
        }
        for i in &self.inds {
            for key in &i.violating {
                out.insert(ViolationKey::Ind {
                    dep: i.dep,
                    missing: self.values.resolve_row(key),
                });
            }
        }
        out
    }

    /// Human-readable description of a violation, naming the dependency.
    pub fn explain(&self, v: &ViolationKey) -> String {
        match v {
            ViolationKey::Fd { dep, lhs } => {
                let vals: Vec<String> = lhs.iter().map(|x| x.to_string()).collect();
                format!(
                    "FD {} violated: rows with ({}) on the LHS disagree on the RHS",
                    self.sigma[*dep],
                    vals.join(", ")
                )
            }
            ViolationKey::Ind { dep, missing } => {
                let vals: Vec<String> = missing.iter().map(|x| x.to_string()).collect();
                format!(
                    "IND {} violated: projection ({}) missing on the right",
                    self.sigma[*dep],
                    vals.join(", ")
                )
            }
        }
    }

    fn rel_index(&self, rel: &RelName, t: &Tuple) -> Result<usize, CoreError> {
        let id = self
            .catalog
            .rel_id(rel)
            .ok_or_else(|| CoreError::UnknownRelation(rel.name().to_owned()))?;
        let arity = self.schema.schemes()[id.index()].arity();
        if t.len() != arity {
            return Err(CoreError::TupleArity {
                relation: rel.name().to_owned(),
                expected: arity,
                actual: t.len(),
            });
        }
        Ok(id.index())
    }

    fn insert_tuple(&mut self, rel: &RelName, t: &Tuple) -> Result<bool, CoreError> {
        let r = self.rel_index(rel, t)?;
        let row = self.values.intern_row(t.values());
        if !self.rows[r].insert(row.clone()) {
            // Duplicate rows intern nothing fresh (every value is already
            // retained by the live copy), so there is nothing to undo.
            return Ok(false);
        }
        self.values.retain_row(&row);
        self.reindex_row(r, &row, true);
        Ok(true)
    }

    fn delete_tuple(&mut self, rel: &RelName, t: &Tuple) -> Result<bool, CoreError> {
        let r = self.rel_index(rel, t)?;
        // A value the interner has never seen cannot be in any live row.
        let Some(row) = self.values.lookup_row(t.values()) else {
            return Ok(false);
        };
        if !self.rows[r].remove(&row) {
            return Ok(false);
        }
        self.reindex_row(r, &row, false);
        // Release after reindexing: ids reaching zero references are
        // recycled, and every index key referencing them is gone by now.
        self.values.release_row(&row);
        Ok(true)
    }

    /// Update every constraint watching relation `r` for one effective row
    /// change (`add` = inserted, else deleted).
    fn reindex_row(&mut self, r: usize, row: &[u32], add: bool) {
        for w in 0..self.fd_watch[r].len() {
            let fi = self.fd_watch[r][w] as usize;
            let f = &mut self.fds[fi];
            let key = project(row, &f.lhs_cols);
            let val = project(row, &f.rhs_cols);
            if add {
                let group = f.groups.entry(key.clone()).or_default();
                group.add(val);
                if group.distinct() >= 2 {
                    f.violating.insert(key);
                }
            } else if let Some(group) = f.groups.get_mut(&key) {
                group.remove(&val);
                if group.distinct() < 2 {
                    f.violating.remove(&key);
                }
                if group.is_empty() {
                    f.groups.remove(&key);
                }
            }
        }
        for w in 0..self.ind_left_watch[r].len() {
            let ii = self.ind_left_watch[r][w] as usize;
            let i = &mut self.inds[ii];
            let key = project(row, &i.lhs_cols);
            if add {
                i.left.add(key.clone());
                if i.right.count(&key) == 0 {
                    i.violating.insert(key);
                }
            } else if i.left.remove(&key) == 0 {
                i.violating.remove(&key);
            }
        }
        for w in 0..self.ind_right_watch[r].len() {
            let ii = self.ind_right_watch[r][w] as usize;
            let i = &mut self.inds[ii];
            let key = project(row, &i.rhs_cols);
            if add {
                if i.right.add(key.clone()) == 1 {
                    i.violating.remove(&key);
                }
            } else if i.right.remove(&key) == 0 && i.left.count(&key) > 0 {
                i.violating.insert(key);
            }
        }
    }
}

/// The full-revalidation reference path: recompute the violation set of
/// `sigma` against `db` from scratch, in time proportional to the whole
/// database.
///
/// Produces exactly the normalized [`ViolationKey`] set a [`Validator`]
/// holding the same rows reports — the differential-testing oracle for the
/// incremental engine, and the baseline the `incremental_validation` bench
/// measures against.
pub fn full_violations(
    db: &Database,
    sigma: &[Dependency],
) -> Result<BTreeSet<ViolationKey>, CoreError> {
    let mut out = BTreeSet::new();
    for (dep, d) in sigma.iter().enumerate() {
        match d {
            Dependency::Fd(fd) => {
                let r = db.relation(&fd.rel)?;
                let lhs_cols = r.scheme().columns(&fd.lhs)?;
                let rhs_cols = r.scheme().columns(&fd.rhs)?;
                let mut groups: HashMap<Vec<Value>, HashSet<Vec<Value>>> = HashMap::new();
                for t in r.tuples() {
                    groups
                        .entry(t.project(&lhs_cols))
                        .or_default()
                        .insert(t.project(&rhs_cols));
                }
                for (lhs, rhs_set) in groups {
                    if rhs_set.len() >= 2 {
                        out.insert(ViolationKey::Fd { dep, lhs });
                    }
                }
            }
            Dependency::Ind(ind) => {
                let left = db.relation(&ind.lhs_rel)?;
                let right = db.relation(&ind.rhs_rel)?;
                let lcols = left.scheme().columns(&ind.lhs_attrs)?;
                let rcols = right.scheme().columns(&ind.rhs_attrs)?;
                let covered: HashSet<Vec<Value>> =
                    right.tuples().map(|t| t.project(&rcols)).collect();
                // Borrow-keyed membership probe; the owned projection is
                // materialized only for actual violations.
                let mut buf: Vec<Value> = Vec::with_capacity(lcols.len());
                for t in left.tuples() {
                    buf.clear();
                    buf.extend(t.project_ref(&lcols).cloned());
                    if !covered.contains(buf.as_slice()) {
                        out.insert(ViolationKey::Ind {
                            dep,
                            missing: buf.clone(),
                        });
                    }
                }
            }
            other => {
                return Err(CoreError::UnsupportedDependency(format!(
                    "full revalidation handles FDs and INDs only, got `{other}`"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::delta::Delta;

    fn setup() -> (DatabaseSchema, Vec<Dependency>) {
        let schema = DatabaseSchema::parse(&["EMP(NAME, DEPT)", "DEPT(DNO, MGR)"]).unwrap();
        let sigma: Vec<Dependency> = vec![
            "EMP[DEPT] <= DEPT[DNO]".parse().unwrap(),
            "EMP: NAME -> DEPT".parse().unwrap(),
            "DEPT: DNO -> MGR".parse().unwrap(),
        ];
        (schema, sigma)
    }

    fn check_against_full(v: &Validator, db: &Database, sigma: &[Dependency]) {
        assert_eq!(
            v.violations(),
            full_violations(db, sigma).unwrap(),
            "incremental and full recheck disagree"
        );
    }

    #[test]
    fn ind_violation_appears_and_clears() {
        let (schema, sigma) = setup();
        let mut v = Validator::new(&schema, &sigma).unwrap();
        let mut db = Database::empty(schema);
        assert!(v.is_consistent());

        // Dangling EMP row.
        let mut d = Delta::new();
        d.insert("EMP", Tuple::strs(&["h", "math"]));
        v.apply(&d).unwrap();
        db.apply_delta(&d).unwrap();
        assert_eq!(v.violation_count(), 1);
        check_against_full(&v, &db, &sigma);

        // Covering DEPT row clears it.
        let mut d2 = Delta::new();
        d2.insert("DEPT", Tuple::strs(&["math", "gauss"]));
        v.apply(&d2).unwrap();
        db.apply_delta(&d2).unwrap();
        assert!(v.is_consistent());
        check_against_full(&v, &db, &sigma);

        // Deleting the covering row re-violates.
        let mut d3 = Delta::new();
        d3.delete("DEPT", Tuple::strs(&["math", "gauss"]));
        v.apply(&d3).unwrap();
        db.apply_delta(&d3).unwrap();
        assert_eq!(v.violation_count(), 1);
        check_against_full(&v, &db, &sigma);

        // Deleting the dangling row restores consistency.
        let mut d4 = Delta::new();
        d4.delete("EMP", Tuple::strs(&["h", "math"]));
        v.apply(&d4).unwrap();
        db.apply_delta(&d4).unwrap();
        assert!(v.is_consistent());
        assert_eq!(v.total_rows(), 0);
        check_against_full(&v, &db, &sigma);
    }

    #[test]
    fn fd_violation_tracks_distinct_rhs_groups() {
        let (schema, sigma) = setup();
        let mut v = Validator::new(&schema, &sigma).unwrap();
        let mut db = Database::empty(schema);

        let mut d = Delta::new();
        d.insert("DEPT", Tuple::strs(&["math", "gauss"]));
        d.insert("DEPT", Tuple::strs(&["math", "euler"])); // FD DNO -> MGR broken
        d.insert("DEPT", Tuple::strs(&["cs", "knuth"]));
        v.apply(&d).unwrap();
        db.apply_delta(&d).unwrap();
        assert_eq!(v.violation_count(), 1);
        check_against_full(&v, &db, &sigma);

        // Removing one of the two conflicting rows repairs the group.
        let mut d2 = Delta::new();
        d2.delete("DEPT", Tuple::strs(&["math", "euler"]));
        v.apply(&d2).unwrap();
        db.apply_delta(&d2).unwrap();
        assert!(v.is_consistent());
        check_against_full(&v, &db, &sigma);
    }

    #[test]
    fn duplicate_inserts_and_absent_deletes_are_noops() {
        let (schema, sigma) = setup();
        let mut v = Validator::new(&schema, &sigma).unwrap();
        let mut d = Delta::new();
        d.insert("DEPT", Tuple::strs(&["math", "gauss"]));
        d.insert("DEPT", Tuple::strs(&["math", "gauss"]));
        d.delete("EMP", Tuple::strs(&["ghost", "cs"]));
        let out = v.apply(&d).unwrap();
        assert_eq!(out.inserted, 1);
        assert_eq!(out.deleted, 0);
        assert_eq!(v.total_rows(), 1);
        assert!(v.is_consistent());
    }

    #[test]
    fn self_ind_updates_both_sides() {
        let schema = DatabaseSchema::parse(&["R(A, B)"]).unwrap();
        let sigma: Vec<Dependency> = vec!["R[A] <= R[B]".parse().unwrap()];
        let mut v = Validator::new(&schema, &sigma).unwrap();
        let mut db = Database::empty(schema);

        // (1, 1) covers itself; (2, 3) leaves A-value 2 uncovered.
        let mut d = Delta::new();
        d.insert_ints("R", &[1, 1]).insert_ints("R", &[2, 3]);
        v.apply(&d).unwrap();
        db.apply_delta(&d).unwrap();
        assert_eq!(v.violation_count(), 1); // A-value 2 uncovered by B
        check_against_full(&v, &db, &sigma);

        // Covering row for 2 and 3.
        let mut d2 = Delta::new();
        d2.insert_ints("R", &[3, 2]);
        v.apply(&d2).unwrap();
        db.apply_delta(&d2).unwrap();
        check_against_full(&v, &db, &sigma);
        assert!(v.is_consistent());
    }

    #[test]
    fn churn_does_not_grow_the_value_table() {
        let (schema, sigma) = setup();
        let mut v = Validator::new(&schema, &sigma).unwrap();
        let mut d0 = Delta::new();
        d0.insert("DEPT", Tuple::strs(&["math", "gauss"]));
        v.apply(&d0).unwrap();
        let baseline = v.live_values();

        // A million-write workload in miniature: every batch replaces one
        // employee row with a fresh never-seen name. Dead values must be
        // released and their slots recycled.
        for i in 0..100 {
            let name = format!("emp{i}");
            let prev = format!("emp{}", i.max(1) - 1);
            let mut d = Delta::new();
            d.delete("EMP", Tuple::strs(&[&prev, "math"]));
            d.insert("EMP", Tuple::strs(&[&name, "math"]));
            v.apply(&d).unwrap();
            assert!(v.is_consistent());
        }
        assert_eq!(v.total_rows(), 2);
        // baseline (2 DEPT values) + 1 live employee name + "math" shared.
        assert_eq!(v.live_values(), baseline + 1);
    }

    #[test]
    fn seed_matches_bulk_delta() {
        let (schema, sigma) = setup();
        let mut db = Database::empty(schema.clone());
        db.insert_str("DEPT", &[&["math", "gauss"], &["cs", "knuth"]])
            .unwrap();
        db.insert_str("EMP", &[&["h", "math"], &["k", "cs"], &["x", "bio"]])
            .unwrap();
        let mut v = Validator::new(&schema, &sigma).unwrap();
        let out = v.seed(&db).unwrap();
        assert_eq!(out.inserted, 5);
        assert_eq!(v.total_rows(), db.total_tuples());
        check_against_full(&v, &db, &sigma);
        assert_eq!(v.violation_count(), 1); // ("bio") dangling
    }

    #[test]
    fn failed_seed_mutates_nothing() {
        // A database whose *last* relation is unknown to the validator:
        // the error must surface before any earlier relation's rows touch
        // the indexes, or the violation sets would go stale (counts
        // updated, recompute skipped).
        let (schema, sigma) = setup();
        let mut v = Validator::new(&schema, &sigma).unwrap();
        let bad_schema =
            DatabaseSchema::parse(&["EMP(NAME, DEPT)", "DEPT(DNO, MGR)", "X(C)"]).unwrap();
        let mut bad = Database::empty(bad_schema);
        // Two EMP rows that would violate the FD NAME -> DEPT.
        bad.insert_str("EMP", &[&["h", "math"], &["h", "cs"]])
            .unwrap();
        bad.insert_str("X", &[&["boom"]]).unwrap();
        assert!(matches!(v.seed(&bad), Err(CoreError::UnknownRelation(_))));
        assert_eq!(v.total_rows(), 0);
        assert!(v.is_consistent());
        assert!(v.violations().is_empty());

        // Arity mismatch under a known name is likewise rejected up front.
        let widened = DatabaseSchema::parse(&["EMP(NAME, DEPT, EXTRA)"]).unwrap();
        let mut wide = Database::empty(widened);
        wide.insert_str("EMP", &[&["h", "math", "x"]]).unwrap();
        assert!(matches!(v.seed(&wide), Err(CoreError::TupleArity { .. })));
        assert_eq!(v.total_rows(), 0);
        assert!(v.is_consistent());
    }

    #[test]
    fn rejects_unsupported_dependencies_and_bad_tuples() {
        let schema = DatabaseSchema::parse(&["R(A, B)"]).unwrap();
        let rd: Dependency = "R[A = B]".parse().unwrap();
        assert!(matches!(
            Validator::new(&schema, std::slice::from_ref(&rd)),
            Err(CoreError::UnsupportedDependency(_))
        ));
        assert!(matches!(
            full_violations(&Database::empty(schema.clone()), &[rd]),
            Err(CoreError::UnsupportedDependency(_))
        ));

        let mut v = Validator::new(&schema, &[]).unwrap();
        let mut bad_rel = Delta::new();
        bad_rel.insert_ints("S", &[1, 2]);
        assert!(v.apply(&bad_rel).is_err());
        let mut bad_arity = Delta::new();
        bad_arity.insert_ints("R", &[1]);
        assert!(v.apply(&bad_arity).is_err());
    }

    #[test]
    fn explain_names_the_dependency() {
        let (schema, sigma) = setup();
        let mut v = Validator::new(&schema, &sigma).unwrap();
        let mut d = Delta::new();
        d.insert("EMP", Tuple::strs(&["h", "math"]));
        v.apply(&d).unwrap();
        let vs = v.violations();
        let first = vs.iter().next().unwrap();
        let text = v.explain(first);
        assert!(text.contains("EMP[DEPT]"), "got: {text}");
        assert!(first.to_string().contains("IND #0"));
    }
}
