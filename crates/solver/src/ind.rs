//! The IND decision procedure of Section 3.
//!
//! By Corollary 3.2, `Σ ⊨ R_a[A_1..A_m] ⊆ R_b[B_1..B_m]` iff there is a
//! sequence of *expressions* `S_1[X_1], ..., S_w[X_w]` with
//! `S_1[X_1] = R_a[A_1..A_m]`, `S_w[X_w] = R_b[B_1..B_m]`, and each step
//! `S_i[X_i] ⊆ S_{i+1}[X_{i+1}]` an IND2-instance (projection and
//! permutation) of a member of `Σ`. [`IndSolver`] performs breadth-first
//! search over expressions, which is exactly the paper's decision procedure
//! (steps (1)–(4) after Corollary 3.2) made deterministic.
//!
//! Complexity notes, mirroring the paper:
//!
//! * the general problem is PSPACE-complete (Theorem 3.3); this worklist
//!   algorithm may visit superpolynomially many expressions — the
//!   `depkit-perm` crate constructs the Landau-permutation family on which
//!   the walk necessarily has length `f(m) − 1`;
//! * for INDs of arity ≤ k (k fixed) the expression space has polynomial
//!   size, so the same search runs in polynomial time (the paper credits
//!   Kannelakis–Cosmadakis–Vardi with NLOGSPACE-completeness);
//! * for *typed* INDs `R[X] ⊆ S[X]` the expression's attribute sequence
//!   never changes, so the search degenerates to reachability over relation
//!   names. [`IndSolver::implies`] (and the stats/walk variants) dispatch to
//!   this fast path automatically whenever `Σ` and the target are typed;
//!   [`IndSolver::implies_typed`] remains for callers that want to know
//!   whether the fragment applies.
//!
//! The solver is *compiled*: `Σ` is interned into a
//! [`depkit_core::intern::Catalog`] at construction (deduplicated, trivial
//! `R[X] ⊆ R[X]` members dropped), each member carries a positional map over
//! [`AttrId`](depkit_core::intern::AttrId)s so an IND2 application is an
//! index gather, and the BFS
//! visited set is keyed by `(RelId, IdSeq)` instead of heap-string
//! expressions. The original string-based procedure is preserved as
//! [`crate::reference::ReferenceIndSolver`] for differential testing.

use depkit_core::attr::AttrSeq;
use depkit_core::dependency::Ind;
use depkit_core::intern::{Catalog, IdSeq, RelId};
use depkit_core::schema::RelName;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};

/// An expression `S[X]`: a relation name with a sequence of distinct
/// attributes, the state of the Corollary 3.2 search.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Expression {
    /// The relation name `S`.
    pub rel: RelName,
    /// The attribute sequence `X`.
    pub attrs: AttrSeq,
}

impl std::fmt::Display for Expression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.rel, self.attrs)
    }
}

/// Instrumentation for one implication query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Expressions inserted into the visited set (applications of the
    /// paper's step (2) that produced a new expression, plus the start).
    pub expressions_visited: usize,
    /// Candidate IND applications attempted (successful or not).
    pub applications_attempted: usize,
    /// Length `w` of the found walk (number of expressions), when found.
    pub walk_length: Option<usize>,
}

/// One step of a Corollary 3.2 walk: the expression reached and, except for
/// the start, the index into `Σ` of the IND whose IND2-instance was used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkStep {
    /// The expression `S_i[X_i]`.
    pub expr: Expression,
    /// Index of the IND in `Σ` used to reach this expression (`None` for
    /// the first step).
    pub via: Option<usize>,
}

/// A compiled expression `S[X]`: the visited-set key of the search.
type ExprKey = (RelId, IdSeq);
/// BFS back-pointers: expression -> (predecessor, compiled Σ index used).
type ParentMap = HashMap<ExprKey, Option<(ExprKey, u32)>>;

/// One member of `Σ`, compiled onto catalog ids.
#[derive(Debug, Clone)]
struct CompiledInd {
    /// Index of this member in the caller-supplied `Σ` (walks report it).
    src: usize,
    rhs_rel: RelId,
    rhs: IdSeq,
    /// `pos[attr_id] = p + 1` when the attribute sits at position `p` of the
    /// left side, `0` when absent — a dense map over the solver's catalog,
    /// so an IND2 application is a pure index gather.
    pos: Vec<u32>,
}

impl CompiledInd {
    /// IND2 as an index gather: map each expression attribute through the
    /// positional correspondence, failing on the first absent attribute.
    fn apply(&self, attrs: &IdSeq) -> Option<IdSeq> {
        let mut mapped = Vec::with_capacity(attrs.len());
        for &a in attrs.ids() {
            let p = self.pos[a.index()];
            if p == 0 {
                return None;
            }
            mapped.push(self.rhs.ids()[(p - 1) as usize]);
        }
        Some(IdSeq::from(mapped))
    }

    /// Whether every id of `needed` occurs on the left side (the typed-
    /// fragment applicability test).
    fn covers(&self, needed: &IdSeq) -> bool {
        needed.ids().iter().all(|&a| self.pos[a.index()] != 0)
    }
}

/// A decision procedure for IND implication over a fixed `Σ`, compiled onto
/// the interned-id representation.
///
/// # Examples
///
/// Transitivity (rule IND3) emerges from the Corollary 3.2 expression
/// search, and a found walk is a verifiable certificate:
///
/// ```
/// use depkit_core::{Dependency, Ind};
/// use depkit_solver::ind::{verify_walk, IndSolver};
///
/// let ind = |s: &str| -> Ind {
///     s.parse::<Dependency>().unwrap().as_ind().unwrap().clone()
/// };
/// let sigma = vec![ind("R[A] <= S[B]"), ind("S[B] <= T[C]")];
/// let solver = IndSolver::new(&sigma);
///
/// let target = ind("R[A] <= T[C]");
/// assert!(solver.implies(&target));
/// assert!(!solver.implies(&ind("T[C] <= R[A]")));
///
/// // The walk R[A] ⊆ S[B] ⊆ T[C] has three expressions.
/// let walk = solver.walk(&target).unwrap();
/// assert_eq!(walk.len(), 3);
/// assert!(verify_walk(&sigma, &target, &walk));
/// ```
#[derive(Debug, Clone)]
pub struct IndSolver {
    /// `Σ` exactly as given (walk `via` indices refer to this slice).
    sigma: Vec<Ind>,
    catalog: Catalog,
    /// Deduplicated, non-trivial members of `Σ`, compiled.
    compiled: Vec<CompiledInd>,
    /// `by_lhs_rel[rel_id]` = indices into `compiled` with that left relation.
    by_lhs_rel: Vec<Vec<u32>>,
    /// Whether every member of `Σ` is typed (enables the reachability path).
    all_typed: bool,
}

impl IndSolver {
    /// Build a solver from a set of INDs.
    ///
    /// `Σ` is compiled up front: every symbol is interned, exact duplicates
    /// and trivial members (`R[X] ⊆ R[X]`, rule IND1 instances) are dropped
    /// from the search tables — they can never produce a new expression and
    /// would only inflate [`SearchStats::applications_attempted`] and the
    /// visited set. [`IndSolver::sigma`] still returns the original set, and
    /// walk steps keep indexing it.
    pub fn new(sigma: &[Ind]) -> Self {
        let sigma: Vec<Ind> = sigma.to_vec();
        let mut catalog = Catalog::new();
        let all_typed = sigma.iter().all(Ind::is_typed);
        // Pass 1: intern all symbols and drop trivial/duplicate members.
        let mut kept: Vec<(usize, RelId, IdSeq, RelId, IdSeq)> = Vec::new();
        let mut seen: HashSet<(RelId, IdSeq, RelId, IdSeq)> = HashSet::new();
        for (i, ind) in sigma.iter().enumerate() {
            let lhs_rel = catalog.intern_rel(&ind.lhs_rel);
            let rhs_rel = catalog.intern_rel(&ind.rhs_rel);
            let lhs = catalog.intern_attrs(&ind.lhs_attrs);
            let rhs = catalog.intern_attrs(&ind.rhs_attrs);
            if lhs_rel == rhs_rel && lhs == rhs {
                continue; // trivial (IND1 instance)
            }
            if !seen.insert((lhs_rel, lhs.clone(), rhs_rel, rhs.clone())) {
                continue; // exact duplicate of an earlier member
            }
            kept.push((i, lhs_rel, lhs, rhs_rel, rhs));
        }
        // Pass 2: the catalog is now complete, so positional maps can be
        // dense over its final attribute count.
        let n_attrs = catalog.attr_count();
        let mut compiled = Vec::with_capacity(kept.len());
        let mut by_lhs_rel: Vec<Vec<u32>> = vec![Vec::new(); catalog.rel_count()];
        for (src, lhs_rel, lhs, rhs_rel, rhs) in kept {
            let mut pos = vec![0u32; n_attrs];
            for (p, &a) in lhs.ids().iter().enumerate() {
                pos[a.index()] = p as u32 + 1;
            }
            by_lhs_rel[lhs_rel.index()].push(compiled.len() as u32);
            compiled.push(CompiledInd {
                src,
                rhs_rel,
                rhs,
                pos,
            });
        }
        IndSolver {
            sigma,
            catalog,
            compiled,
            by_lhs_rel,
            all_typed,
        }
    }

    /// The IND set `Σ`, exactly as supplied (including any duplicates or
    /// trivial members the compiled search skips).
    pub fn sigma(&self) -> &[Ind] {
        &self.sigma
    }

    /// The solver's private symbol catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Decide `Σ ⊨ target`. Dispatches to the typed reachability fast path
    /// automatically when `Σ` and the target are typed.
    pub fn implies(&self, target: &Ind) -> bool {
        self.decide(target).0.is_some()
    }

    /// Decide `Σ ⊨ target`, returning search statistics. The stats are
    /// populated on the typed fast path too: within the typed fragment the
    /// expression graph *is* the relation-reachability graph, so the counts
    /// coincide with what the general search would report.
    pub fn implies_with_stats(&self, target: &Ind) -> (bool, SearchStats) {
        let (walk, stats) = self.decide(target);
        (walk.is_some(), stats)
    }

    /// Produce the Corollary 3.2 walk witnessing `Σ ⊨ target`, or `None`.
    ///
    /// The walk starts at `target`'s left expression and ends at its right
    /// expression; consecutive expressions are related by IND2-instances of
    /// the recorded `Σ` members. [`verify_walk`] checks these conditions.
    pub fn walk(&self, target: &Ind) -> Option<Vec<WalkStep>> {
        self.decide(target).0
    }

    /// Fast path for *typed* INDs (`R[X] ⊆ S[X]`).
    ///
    /// Returns `None` when the fast path does not apply (some IND in `Σ` or
    /// the target is untyped); otherwise decides implication by reachability
    /// over relation ids, in time `O(|Σ| · |schema|)`. Plain
    /// [`IndSolver::implies`] already takes this path automatically; this
    /// entry point remains for callers that want to know whether the typed
    /// fragment applies.
    ///
    /// Soundness/completeness within the typed fragment: a typed IND applied
    /// by IND2 to an expression `R[X]` with `set(X) ⊆ set(W)` yields `S[X]`
    /// with the *same* attribute sequence, so walks never change the
    /// attribute sequence and only relation names matter.
    pub fn implies_typed(&self, target: &Ind) -> Option<bool> {
        self.typed_search(target).map(|(walk, _)| walk.is_some())
    }

    /// Route a query to the typed fast path when it applies, else the
    /// general expression search.
    fn decide(&self, target: &Ind) -> (Option<Vec<WalkStep>>, SearchStats) {
        match self.typed_search(target) {
            Some(result) => result,
            None => self.search(target),
        }
    }

    /// The single-expression walk for a trivial target (`start = goal`).
    fn trivial_walk(target: &Ind) -> Vec<WalkStep> {
        vec![WalkStep {
            expr: Expression {
                rel: target.lhs_rel.clone(),
                attrs: target.lhs_attrs.clone(),
            },
            via: None,
        }]
    }

    fn search(&self, target: &Ind) -> (Option<Vec<WalkStep>>, SearchStats) {
        let mut stats = SearchStats {
            expressions_visited: 1,
            ..SearchStats::default()
        };
        if target.is_trivial() {
            stats.walk_length = Some(1);
            return (Some(Self::trivial_walk(target)), stats);
        }
        // Boundary interning. A symbol `Σ` never mentions cannot occur in
        // any IND2 application, so a non-trivial target containing one is
        // simply not implied.
        let (Some(start_rel), Some(goal_rel)) = (
            self.catalog.rel_id(&target.lhs_rel),
            self.catalog.rel_id(&target.rhs_rel),
        ) else {
            return (None, stats);
        };
        let (Some(start_attrs), Some(goal_attrs)) = (
            self.catalog.lookup_attrs(&target.lhs_attrs),
            self.catalog.lookup_attrs(&target.rhs_attrs),
        ) else {
            return (None, stats);
        };
        let start = (start_rel, start_attrs);
        let goal = (goal_rel, goal_attrs);
        // parent: expression -> (predecessor, compiled index used)
        let mut parent: ParentMap = HashMap::new();
        parent.insert(start.clone(), None);
        let mut queue = VecDeque::from([start]);
        while let Some(expr) = queue.pop_front() {
            for &ci in &self.by_lhs_rel[expr.0.index()] {
                stats.applications_attempted += 1;
                let c = &self.compiled[ci as usize];
                let Some(mapped) = c.apply(&expr.1) else {
                    continue;
                };
                let next = (c.rhs_rel, mapped);
                match parent.entry(next.clone()) {
                    Entry::Occupied(_) => continue,
                    Entry::Vacant(slot) => {
                        slot.insert(Some((expr.clone(), ci)));
                        stats.expressions_visited += 1;
                    }
                }
                if next == goal {
                    let walk = self.reconstruct(&parent, &next);
                    stats.walk_length = Some(walk.len());
                    return (Some(walk), stats);
                }
                queue.push_back(next);
            }
        }
        (None, stats)
    }

    /// Reachability search over relation ids for the typed fragment, with
    /// the same stats and walk shape as the general search. `None` when the
    /// fragment does not apply.
    fn typed_search(&self, target: &Ind) -> Option<(Option<Vec<WalkStep>>, SearchStats)> {
        if !self.all_typed || !target.is_typed() {
            return None;
        }
        let mut stats = SearchStats {
            expressions_visited: 1,
            ..SearchStats::default()
        };
        if target.is_trivial() {
            stats.walk_length = Some(1);
            return Some((Some(Self::trivial_walk(target)), stats));
        }
        let (Some(start_rel), Some(goal_rel)) = (
            self.catalog.rel_id(&target.lhs_rel),
            self.catalog.rel_id(&target.rhs_rel),
        ) else {
            return Some((None, stats));
        };
        let Some(needed) = self.catalog.lookup_attrs(&target.lhs_attrs) else {
            return Some((None, stats));
        };
        // parent[rel_id] = (predecessor rel, compiled index), for visited
        // relations other than the start.
        let mut parent: Vec<Option<(RelId, u32)>> = vec![None; self.catalog.rel_count()];
        let mut visited = vec![false; self.catalog.rel_count()];
        visited[start_rel.index()] = true;
        let mut queue = VecDeque::from([start_rel]);
        while let Some(rel) = queue.pop_front() {
            for &ci in &self.by_lhs_rel[rel.index()] {
                stats.applications_attempted += 1;
                let c = &self.compiled[ci as usize];
                if !c.covers(&needed) || visited[c.rhs_rel.index()] {
                    continue;
                }
                visited[c.rhs_rel.index()] = true;
                parent[c.rhs_rel.index()] = Some((rel, ci));
                stats.expressions_visited += 1;
                if c.rhs_rel == goal_rel {
                    let walk = self.reconstruct_typed(&parent, target, goal_rel);
                    stats.walk_length = Some(walk.len());
                    return Some((Some(walk), stats));
                }
                queue.push_back(c.rhs_rel);
            }
        }
        Some((None, stats))
    }

    fn reconstruct(&self, parent: &ParentMap, end: &ExprKey) -> Vec<WalkStep> {
        let mut steps = Vec::new();
        let mut cur = end.clone();
        loop {
            let expr = Expression {
                rel: self.catalog.resolve_rel(cur.0),
                attrs: self.catalog.resolve_attrs(&cur.1),
            };
            match parent
                .get(&cur)
                .expect("every visited node has a parent entry")
            {
                Some((prev, ci)) => {
                    steps.push(WalkStep {
                        expr,
                        via: Some(self.compiled[*ci as usize].src),
                    });
                    cur = prev.clone();
                }
                None => {
                    steps.push(WalkStep { expr, via: None });
                    break;
                }
            }
        }
        steps.reverse();
        steps
    }

    /// Typed walks carry the target's (unchanging) attribute sequence at
    /// every step; only the relation varies.
    fn reconstruct_typed(
        &self,
        parent: &[Option<(RelId, u32)>],
        target: &Ind,
        goal_rel: RelId,
    ) -> Vec<WalkStep> {
        let mut steps = Vec::new();
        let mut cur = goal_rel;
        loop {
            let expr = Expression {
                rel: self.catalog.resolve_rel(cur),
                attrs: target.lhs_attrs.clone(),
            };
            match parent[cur.index()] {
                Some((prev, ci)) => {
                    steps.push(WalkStep {
                        expr,
                        via: Some(self.compiled[ci as usize].src),
                    });
                    cur = prev;
                }
                None => {
                    steps.push(WalkStep { expr, via: None });
                    break;
                }
            }
        }
        steps.reverse();
        steps
    }
}

/// Apply IND2 (projection and permutation) of `ind` to `expr`: succeeds when
/// `expr` names `ind`'s left relation and every attribute of `expr` occurs
/// in `ind`'s left side; the result maps each attribute through `ind`'s
/// positional correspondence.
pub fn apply_ind2(ind: &Ind, expr: &Expression) -> Option<Expression> {
    if expr.rel != ind.lhs_rel {
        return None;
    }
    let mut mapped = Vec::with_capacity(expr.attrs.len());
    for a in expr.attrs.attrs() {
        let p = ind.lhs_attrs.position(a)?;
        mapped.push(ind.rhs_attrs.attrs()[p].clone());
    }
    // `ind`'s right side has distinct attributes and position mapping is
    // injective, so the selection is distinct.
    let attrs = AttrSeq::new(mapped).expect("projection of distinct attributes is distinct");
    Some(Expression {
        rel: ind.rhs_rel.clone(),
        attrs,
    })
}

/// Verify that `walk` witnesses `sigma ⊨ target` per Corollary 3.2:
/// conditions (iii)–(v) of the corollary.
pub fn verify_walk(sigma: &[Ind], target: &Ind, walk: &[WalkStep]) -> bool {
    let Some(first) = walk.first() else {
        return false;
    };
    let Some(last) = walk.last() else {
        return false;
    };
    if first.expr.rel != target.lhs_rel || first.expr.attrs != target.lhs_attrs {
        return false;
    }
    if last.expr.rel != target.rhs_rel || last.expr.attrs != target.rhs_attrs {
        return false;
    }
    for w in 1..walk.len() {
        let Some(via) = walk[w].via else {
            return false;
        };
        let Some(ind) = sigma.get(via) else {
            return false;
        };
        match apply_ind2(ind, &walk[w - 1].expr) {
            Some(next) if next == walk[w].expr => {}
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::parser::parse_dependency;

    fn ind(src: &str) -> Ind {
        match parse_dependency(src).unwrap() {
            depkit_core::Dependency::Ind(i) => i,
            _ => panic!("not an IND: {src}"),
        }
    }

    fn inds(srcs: &[&str]) -> Vec<Ind> {
        srcs.iter().map(|s| ind(s)).collect()
    }

    #[test]
    fn reflexivity_ind1() {
        let solver = IndSolver::new(&[]);
        assert!(solver.implies(&ind("R[A, B] <= R[A, B]")));
        assert!(!solver.implies(&ind("R[A, B] <= R[B, A]")));
    }

    #[test]
    fn projection_and_permutation_ind2() {
        let sigma = inds(&["R[A, B, C] <= S[D, E, F]"]);
        let solver = IndSolver::new(&sigma);
        assert!(solver.implies(&ind("R[A] <= S[D]")));
        assert!(solver.implies(&ind("R[C, A] <= S[F, D]")));
        assert!(!solver.implies(&ind("R[A] <= S[E]")));
        assert!(!solver.implies(&ind("R[C, A] <= S[D, F]")));
    }

    #[test]
    fn transitivity_ind3() {
        let sigma = inds(&["R[A] <= S[B]", "S[B] <= T[C]"]);
        let solver = IndSolver::new(&sigma);
        assert!(solver.implies(&ind("R[A] <= T[C]")));
        assert!(!solver.implies(&ind("T[C] <= R[A]")));
    }

    #[test]
    fn combined_projection_then_transitivity() {
        let sigma = inds(&["R[A, B] <= S[C, D]", "S[D] <= T[E]"]);
        let solver = IndSolver::new(&sigma);
        assert!(solver.implies(&ind("R[B] <= T[E]")));
        assert!(!solver.implies(&ind("R[A] <= T[E]")));
    }

    #[test]
    fn walk_is_verifiable() {
        let sigma = inds(&["R[A, B] <= S[C, D]", "S[C, D] <= T[E, F]"]);
        let solver = IndSolver::new(&sigma);
        let target = ind("R[B, A] <= T[F, E]");
        let walk = solver.walk(&target).expect("implication holds");
        assert_eq!(walk.len(), 3);
        assert!(verify_walk(&sigma, &target, &walk));
        // Tampered walk fails verification.
        let mut bad = walk.clone();
        bad.pop();
        assert!(!verify_walk(&sigma, &target, &bad));
    }

    #[test]
    fn permutation_cycle_needs_many_steps() {
        // σ(γ) with γ the 3-cycle (A B C): R[A,B,C] ⊆ R[B,C,A].
        // γ has order 3, so σ(γ²) = R[A,B,C] ⊆ R[C,A,B] needs 2 steps.
        let sigma = inds(&["R[A, B, C] <= R[B, C, A]"]);
        let solver = IndSolver::new(&sigma);
        let target = ind("R[A, B, C] <= R[C, A, B]");
        let (yes, stats) = solver.implies_with_stats(&target);
        assert!(yes);
        assert_eq!(stats.walk_length, Some(3)); // w = 3 expressions, 2 steps
    }

    #[test]
    fn self_referential_ind() {
        let sigma = inds(&["R[A] <= R[B]"]);
        let solver = IndSolver::new(&sigma);
        assert!(solver.implies(&ind("R[A] <= R[B]")));
        assert!(!solver.implies(&ind("R[B] <= R[A]")));
    }

    #[test]
    fn typed_fast_path_agrees_with_general_search() {
        let sigma = inds(&[
            "R[A, B] <= S[A, B]",
            "S[A, B, C] <= T[A, B, C]",
            "T[A] <= U[A]",
        ]);
        let solver = IndSolver::new(&sigma);
        let cases = [
            ("R[A] <= T[A]", true),
            ("R[A, B] <= T[A, B]", true),
            ("R[A] <= U[A]", true),
            ("R[B] <= U[B]", false),
            ("S[C] <= T[C]", true),
            ("R[C] <= T[C]", false),
            ("U[A] <= R[A]", false),
        ];
        for (src, expected) in cases {
            let t = ind(src);
            assert_eq!(solver.implies(&t), expected, "general: {src}");
            assert_eq!(solver.implies_typed(&t), Some(expected), "typed: {src}");
        }
        // Fast path declines untyped targets.
        assert_eq!(solver.implies_typed(&ind("R[A] <= S[B]")), None);
        // Fast path declines untyped sigma.
        let untyped = IndSolver::new(&inds(&["R[A] <= S[B]"]));
        assert_eq!(untyped.implies_typed(&ind("R[A] <= S[A]")), None);
    }

    #[test]
    fn stats_count_expressions() {
        // A permutation cycle of order 4 on two attributes... use the
        // 4-cycle on (A B C D): expressions along the path: 4 total.
        let sigma = inds(&["R[A, B, C, D] <= R[B, C, D, A]"]);
        let solver = IndSolver::new(&sigma);
        let target = ind("R[A, B, C, D] <= R[D, A, B, C]");
        let (yes, stats) = solver.implies_with_stats(&target);
        assert!(yes);
        // Start + 3 new expressions reached.
        assert_eq!(stats.expressions_visited, 4);
        assert_eq!(stats.walk_length, Some(4));
    }

    #[test]
    fn sigma_dedupe_skips_trivial_and_duplicate_members() {
        // Two copies of the useful IND, one trivial IND1 instance.
        let noisy = inds(&[
            "R[A] <= S[B]",
            "R[A] <= S[B]",
            "T[C] <= T[C]",
            "S[B] <= T[C]",
        ]);
        let clean = inds(&["R[A] <= S[B]", "S[B] <= T[C]"]);
        let noisy_solver = IndSolver::new(&noisy);
        let clean_solver = IndSolver::new(&clean);
        // `sigma()` still reports the original set.
        assert_eq!(noisy_solver.sigma(), &noisy[..]);
        let target = ind("R[A] <= T[C]");
        let (yes, noisy_stats) = noisy_solver.implies_with_stats(&target);
        let (_, clean_stats) = clean_solver.implies_with_stats(&target);
        assert!(yes);
        // Duplicates and trivial members cost nothing in the search.
        assert_eq!(noisy_stats, clean_stats);
        // Walk `via` indices refer to the ORIGINAL sigma positions.
        let walk = noisy_solver.walk(&target).unwrap();
        assert!(verify_walk(&noisy, &target, &walk));
    }

    #[test]
    fn typed_dispatch_populates_stats() {
        let sigma = inds(&["R[A] <= S[A]", "S[A] <= T[A]"]);
        let solver = IndSolver::new(&sigma);
        let target = ind("R[A] <= T[A]");
        // The typed fragment applies, and plain implies_with_stats uses it.
        assert_eq!(solver.implies_typed(&target), Some(true));
        let (yes, stats) = solver.implies_with_stats(&target);
        assert!(yes);
        assert_eq!(stats.walk_length, Some(3));
        assert_eq!(stats.expressions_visited, 3);
        assert!(stats.applications_attempted >= 2);
        // The typed-path walk is a genuine Corollary 3.2 witness.
        let walk = solver.walk(&target).unwrap();
        assert_eq!(walk.len(), 3);
        assert!(verify_walk(&sigma, &target, &walk));
        // A non-implied typed target reports a full (failed) search.
        let (no, stats) = solver.implies_with_stats(&ind("T[A] <= R[A]"));
        assert!(!no);
        assert_eq!(stats.walk_length, None);
        assert_eq!(stats.expressions_visited, 1);
    }

    #[test]
    fn typed_stats_match_general_search_counts() {
        // With all-typed Σ the expression graph IS the relation graph, so
        // the typed path must report the same stats the general search
        // would. Compare against the reference implementation.
        let sigma = inds(&[
            "R[A, B] <= S[A, B]",
            "S[A, B, C] <= T[A, B, C]",
            "T[A] <= U[A]",
            "S[A] <= U[A]",
        ]);
        let solver = IndSolver::new(&sigma);
        let reference = crate::reference::ReferenceIndSolver::new(&sigma);
        for src in ["R[A] <= U[A]", "R[A, B] <= T[A, B]", "R[C] <= U[C]"] {
            let t = ind(src);
            let (yes, stats) = solver.implies_with_stats(&t);
            let (ref_yes, ref_stats) = reference.implies_with_stats(&t);
            assert_eq!(yes, ref_yes, "{src}");
            assert_eq!(stats, ref_stats, "{src}");
        }
    }

    #[test]
    fn unknown_target_symbols_are_not_implied() {
        let solver = IndSolver::new(&inds(&["R[A] <= S[B]"]));
        // Unknown relation / attribute: only trivial targets hold.
        assert!(!solver.implies(&ind("Q[A] <= S[B]")));
        assert!(!solver.implies(&ind("R[Z] <= S[B]")));
        assert!(solver.implies(&ind("Q[Z] <= Q[Z]")));
        assert_eq!(solver.walk(&ind("Q[Z] <= Q[Z]")).map(|w| w.len()), Some(1));
    }

    #[test]
    fn unsatisfiable_exhausts_search() {
        let sigma = inds(&["R[A, B] <= R[B, A]"]);
        let solver = IndSolver::new(&sigma);
        // R[A,B] can reach R[B,A] and back, but never S[...].
        let (yes, stats) = solver.implies_with_stats(&ind("R[A] <= S[A]"));
        assert!(!yes);
        assert!(stats.expressions_visited >= 1);
    }
}
