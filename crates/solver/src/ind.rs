//! The IND decision procedure of Section 3.
//!
//! By Corollary 3.2, `Σ ⊨ R_a[A_1..A_m] ⊆ R_b[B_1..B_m]` iff there is a
//! sequence of *expressions* `S_1[X_1], ..., S_w[X_w]` with
//! `S_1[X_1] = R_a[A_1..A_m]`, `S_w[X_w] = R_b[B_1..B_m]`, and each step
//! `S_i[X_i] ⊆ S_{i+1}[X_{i+1}]` an IND2-instance (projection and
//! permutation) of a member of `Σ`. [`IndSolver`] performs breadth-first
//! search over expressions, which is exactly the paper's decision procedure
//! (steps (1)–(4) after Corollary 3.2) made deterministic.
//!
//! Complexity notes, mirroring the paper:
//!
//! * the general problem is PSPACE-complete (Theorem 3.3); this worklist
//!   algorithm may visit superpolynomially many expressions — the
//!   `depkit-perm` crate constructs the Landau-permutation family on which
//!   the walk necessarily has length `f(m) − 1`;
//! * for INDs of arity ≤ k (k fixed) the expression space has polynomial
//!   size, so the same search runs in polynomial time (the paper credits
//!   Kannelakis–Cosmadakis–Vardi with NLOGSPACE-completeness);
//! * for *typed* INDs `R[X] ⊆ S[X]` the expression's attribute sequence
//!   never changes, so the search degenerates to reachability over relation
//!   names — see [`IndSolver::implies_typed`].

use depkit_core::attr::AttrSeq;
use depkit_core::dependency::Ind;
use depkit_core::schema::RelName;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};

/// An expression `S[X]`: a relation name with a sequence of distinct
/// attributes, the state of the Corollary 3.2 search.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Expression {
    /// The relation name `S`.
    pub rel: RelName,
    /// The attribute sequence `X`.
    pub attrs: AttrSeq,
}

impl std::fmt::Display for Expression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.rel, self.attrs)
    }
}

/// Instrumentation for one implication query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Expressions inserted into the visited set (applications of the
    /// paper's step (2) that produced a new expression, plus the start).
    pub expressions_visited: usize,
    /// Candidate IND applications attempted (successful or not).
    pub applications_attempted: usize,
    /// Length `w` of the found walk (number of expressions), when found.
    pub walk_length: Option<usize>,
}

/// One step of a Corollary 3.2 walk: the expression reached and, except for
/// the start, the index into `Σ` of the IND whose IND2-instance was used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkStep {
    /// The expression `S_i[X_i]`.
    pub expr: Expression,
    /// Index of the IND in `Σ` used to reach this expression (`None` for
    /// the first step).
    pub via: Option<usize>,
}

/// A decision procedure for IND implication over a fixed `Σ`.
#[derive(Debug, Clone)]
pub struct IndSolver {
    sigma: Vec<Ind>,
    /// Σ indices grouped by left-hand relation name.
    by_lhs_rel: HashMap<RelName, Vec<usize>>,
}

impl IndSolver {
    /// Build a solver from a set of INDs.
    pub fn new(sigma: &[Ind]) -> Self {
        let sigma: Vec<Ind> = sigma.to_vec();
        let mut by_lhs_rel: HashMap<RelName, Vec<usize>> = HashMap::new();
        for (i, ind) in sigma.iter().enumerate() {
            by_lhs_rel.entry(ind.lhs_rel.clone()).or_default().push(i);
        }
        IndSolver { sigma, by_lhs_rel }
    }

    /// The IND set `Σ`.
    pub fn sigma(&self) -> &[Ind] {
        &self.sigma
    }

    /// Decide `Σ ⊨ target`.
    pub fn implies(&self, target: &Ind) -> bool {
        self.search(target).0.is_some()
    }

    /// Decide `Σ ⊨ target`, returning search statistics.
    pub fn implies_with_stats(&self, target: &Ind) -> (bool, SearchStats) {
        let (walk, stats) = self.search(target);
        (walk.is_some(), stats)
    }

    /// Produce the Corollary 3.2 walk witnessing `Σ ⊨ target`, or `None`.
    ///
    /// The walk starts at `target`'s left expression and ends at its right
    /// expression; consecutive expressions are related by IND2-instances of
    /// the recorded `Σ` members. [`verify_walk`] checks these conditions.
    pub fn walk(&self, target: &Ind) -> Option<Vec<WalkStep>> {
        self.search(target).0
    }

    fn search(&self, target: &Ind) -> (Option<Vec<WalkStep>>, SearchStats) {
        let start = Expression {
            rel: target.lhs_rel.clone(),
            attrs: target.lhs_attrs.clone(),
        };
        let goal = Expression {
            rel: target.rhs_rel.clone(),
            attrs: target.rhs_attrs.clone(),
        };
        let mut stats = SearchStats {
            expressions_visited: 1,
            ..SearchStats::default()
        };
        // parent: expression -> (predecessor, sigma index used)
        let mut parent: HashMap<Expression, Option<(Expression, usize)>> = HashMap::new();
        parent.insert(start.clone(), None);
        if start == goal {
            stats.walk_length = Some(1);
            return (
                Some(vec![WalkStep {
                    expr: start,
                    via: None,
                }]),
                stats,
            );
        }
        let mut queue = VecDeque::from([start]);
        while let Some(expr) = queue.pop_front() {
            let Some(candidates) = self.by_lhs_rel.get(&expr.rel) else {
                continue;
            };
            for &i in candidates {
                stats.applications_attempted += 1;
                let Some(next) = apply_ind2(&self.sigma[i], &expr) else {
                    continue;
                };
                match parent.entry(next.clone()) {
                    Entry::Occupied(_) => continue,
                    Entry::Vacant(slot) => {
                        slot.insert(Some((expr.clone(), i)));
                        stats.expressions_visited += 1;
                    }
                }
                if next == goal {
                    let walk = reconstruct(&parent, &next);
                    stats.walk_length = Some(walk.len());
                    return (Some(walk), stats);
                }
                queue.push_back(next);
            }
        }
        (None, stats)
    }

    /// Fast path for *typed* INDs (`R[X] ⊆ S[X]`).
    ///
    /// Returns `None` when the fast path does not apply (some IND in `Σ` or
    /// the target is untyped); otherwise decides implication by reachability
    /// over relation names, in time `O(|Σ| · |schema|)`.
    ///
    /// Soundness/completeness within the typed fragment: a typed IND applied
    /// by IND2 to an expression `R[X]` with `set(X) ⊆ set(W)` yields `S[X]`
    /// with the *same* attribute sequence, so walks never change the
    /// attribute sequence and only relation names matter.
    pub fn implies_typed(&self, target: &Ind) -> Option<bool> {
        if !target.is_typed() || self.sigma.iter().any(|i| !i.is_typed()) {
            return None;
        }
        if target.is_trivial() {
            return Some(true);
        }
        let needed = &target.lhs_attrs;
        let mut visited: HashSet<RelName> = HashSet::from([target.lhs_rel.clone()]);
        let mut queue = VecDeque::from([target.lhs_rel.clone()]);
        while let Some(rel) = queue.pop_front() {
            let Some(candidates) = self.by_lhs_rel.get(&rel) else {
                continue;
            };
            for &i in candidates {
                let ind = &self.sigma[i];
                if needed.subset_of(&ind.lhs_attrs) && visited.insert(ind.rhs_rel.clone()) {
                    if ind.rhs_rel == target.rhs_rel {
                        return Some(true);
                    }
                    queue.push_back(ind.rhs_rel.clone());
                }
            }
        }
        Some(false)
    }
}

/// Apply IND2 (projection and permutation) of `ind` to `expr`: succeeds when
/// `expr` names `ind`'s left relation and every attribute of `expr` occurs
/// in `ind`'s left side; the result maps each attribute through `ind`'s
/// positional correspondence.
pub fn apply_ind2(ind: &Ind, expr: &Expression) -> Option<Expression> {
    if expr.rel != ind.lhs_rel {
        return None;
    }
    let mut mapped = Vec::with_capacity(expr.attrs.len());
    for a in expr.attrs.attrs() {
        let p = ind.lhs_attrs.position(a)?;
        mapped.push(ind.rhs_attrs.attrs()[p].clone());
    }
    // `ind`'s right side has distinct attributes and position mapping is
    // injective, so the selection is distinct.
    let attrs = AttrSeq::new(mapped).expect("projection of distinct attributes is distinct");
    Some(Expression {
        rel: ind.rhs_rel.clone(),
        attrs,
    })
}

fn reconstruct(
    parent: &HashMap<Expression, Option<(Expression, usize)>>,
    end: &Expression,
) -> Vec<WalkStep> {
    let mut steps = Vec::new();
    let mut cur = end.clone();
    loop {
        match parent
            .get(&cur)
            .expect("every visited node has a parent entry")
        {
            Some((prev, via)) => {
                steps.push(WalkStep {
                    expr: cur.clone(),
                    via: Some(*via),
                });
                cur = prev.clone();
            }
            None => {
                steps.push(WalkStep {
                    expr: cur.clone(),
                    via: None,
                });
                break;
            }
        }
    }
    steps.reverse();
    steps
}

/// Verify that `walk` witnesses `sigma ⊨ target` per Corollary 3.2:
/// conditions (iii)–(v) of the corollary.
pub fn verify_walk(sigma: &[Ind], target: &Ind, walk: &[WalkStep]) -> bool {
    let Some(first) = walk.first() else {
        return false;
    };
    let Some(last) = walk.last() else {
        return false;
    };
    if first.expr.rel != target.lhs_rel || first.expr.attrs != target.lhs_attrs {
        return false;
    }
    if last.expr.rel != target.rhs_rel || last.expr.attrs != target.rhs_attrs {
        return false;
    }
    for w in 1..walk.len() {
        let Some(via) = walk[w].via else {
            return false;
        };
        let Some(ind) = sigma.get(via) else {
            return false;
        };
        match apply_ind2(ind, &walk[w - 1].expr) {
            Some(next) if next == walk[w].expr => {}
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::parser::parse_dependency;

    fn ind(src: &str) -> Ind {
        match parse_dependency(src).unwrap() {
            depkit_core::Dependency::Ind(i) => i,
            _ => panic!("not an IND: {src}"),
        }
    }

    fn inds(srcs: &[&str]) -> Vec<Ind> {
        srcs.iter().map(|s| ind(s)).collect()
    }

    #[test]
    fn reflexivity_ind1() {
        let solver = IndSolver::new(&[]);
        assert!(solver.implies(&ind("R[A, B] <= R[A, B]")));
        assert!(!solver.implies(&ind("R[A, B] <= R[B, A]")));
    }

    #[test]
    fn projection_and_permutation_ind2() {
        let sigma = inds(&["R[A, B, C] <= S[D, E, F]"]);
        let solver = IndSolver::new(&sigma);
        assert!(solver.implies(&ind("R[A] <= S[D]")));
        assert!(solver.implies(&ind("R[C, A] <= S[F, D]")));
        assert!(!solver.implies(&ind("R[A] <= S[E]")));
        assert!(!solver.implies(&ind("R[C, A] <= S[D, F]")));
    }

    #[test]
    fn transitivity_ind3() {
        let sigma = inds(&["R[A] <= S[B]", "S[B] <= T[C]"]);
        let solver = IndSolver::new(&sigma);
        assert!(solver.implies(&ind("R[A] <= T[C]")));
        assert!(!solver.implies(&ind("T[C] <= R[A]")));
    }

    #[test]
    fn combined_projection_then_transitivity() {
        let sigma = inds(&["R[A, B] <= S[C, D]", "S[D] <= T[E]"]);
        let solver = IndSolver::new(&sigma);
        assert!(solver.implies(&ind("R[B] <= T[E]")));
        assert!(!solver.implies(&ind("R[A] <= T[E]")));
    }

    #[test]
    fn walk_is_verifiable() {
        let sigma = inds(&["R[A, B] <= S[C, D]", "S[C, D] <= T[E, F]"]);
        let solver = IndSolver::new(&sigma);
        let target = ind("R[B, A] <= T[F, E]");
        let walk = solver.walk(&target).expect("implication holds");
        assert_eq!(walk.len(), 3);
        assert!(verify_walk(&sigma, &target, &walk));
        // Tampered walk fails verification.
        let mut bad = walk.clone();
        bad.pop();
        assert!(!verify_walk(&sigma, &target, &bad));
    }

    #[test]
    fn permutation_cycle_needs_many_steps() {
        // σ(γ) with γ the 3-cycle (A B C): R[A,B,C] ⊆ R[B,C,A].
        // γ has order 3, so σ(γ²) = R[A,B,C] ⊆ R[C,A,B] needs 2 steps.
        let sigma = inds(&["R[A, B, C] <= R[B, C, A]"]);
        let solver = IndSolver::new(&sigma);
        let target = ind("R[A, B, C] <= R[C, A, B]");
        let (yes, stats) = solver.implies_with_stats(&target);
        assert!(yes);
        assert_eq!(stats.walk_length, Some(3)); // w = 3 expressions, 2 steps
    }

    #[test]
    fn self_referential_ind() {
        let sigma = inds(&["R[A] <= R[B]"]);
        let solver = IndSolver::new(&sigma);
        assert!(solver.implies(&ind("R[A] <= R[B]")));
        assert!(!solver.implies(&ind("R[B] <= R[A]")));
    }

    #[test]
    fn typed_fast_path_agrees_with_general_search() {
        let sigma = inds(&[
            "R[A, B] <= S[A, B]",
            "S[A, B, C] <= T[A, B, C]",
            "T[A] <= U[A]",
        ]);
        let solver = IndSolver::new(&sigma);
        let cases = [
            ("R[A] <= T[A]", true),
            ("R[A, B] <= T[A, B]", true),
            ("R[A] <= U[A]", true),
            ("R[B] <= U[B]", false),
            ("S[C] <= T[C]", true),
            ("R[C] <= T[C]", false),
            ("U[A] <= R[A]", false),
        ];
        for (src, expected) in cases {
            let t = ind(src);
            assert_eq!(solver.implies(&t), expected, "general: {src}");
            assert_eq!(solver.implies_typed(&t), Some(expected), "typed: {src}");
        }
        // Fast path declines untyped targets.
        assert_eq!(solver.implies_typed(&ind("R[A] <= S[B]")), None);
        // Fast path declines untyped sigma.
        let untyped = IndSolver::new(&inds(&["R[A] <= S[B]"]));
        assert_eq!(untyped.implies_typed(&ind("R[A] <= S[A]")), None);
    }

    #[test]
    fn stats_count_expressions() {
        // A permutation cycle of order 4 on two attributes... use the
        // 4-cycle on (A B C D): expressions along the path: 4 total.
        let sigma = inds(&["R[A, B, C, D] <= R[B, C, D, A]"]);
        let solver = IndSolver::new(&sigma);
        let target = ind("R[A, B, C, D] <= R[D, A, B, C]");
        let (yes, stats) = solver.implies_with_stats(&target);
        assert!(yes);
        // Start + 3 new expressions reached.
        assert_eq!(stats.expressions_visited, 4);
        assert_eq!(stats.walk_length, Some(4));
    }

    #[test]
    fn unsatisfiable_exhausts_search() {
        let sigma = inds(&["R[A, B] <= R[B, A]"]);
        let solver = IndSolver::new(&sigma);
        // R[A,B] can reach R[B,A] and back, but never S[...].
        let (yes, stats) = solver.implies_with_stats(&ind("R[A] <= S[A]"));
        assert!(!yes);
        assert!(stats.expressions_visited >= 1);
    }
}
