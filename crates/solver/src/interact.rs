//! FD/IND interaction rules (Section 4) and a sound saturation engine.
//!
//! The paper's Propositions 4.1–4.3 exhibit dependencies implied by FDs and
//! INDs *together* that neither class implies alone:
//!
//! * **Proposition 4.1** (FD pullback): `{R[XY] ⊆ S[TU], S: T → U} ⊨
//!   R: X → Y`.
//! * **Proposition 4.2** (IND augmentation): `{R[XY] ⊆ S[TU], R[XZ] ⊆ S[TV],
//!   S: T → U} ⊨ R[XYZ] ⊆ S[TUV]`.
//! * **Proposition 4.3** (RD generation): `{R[XY] ⊆ S[TU], R[XZ] ⊆ S[TU],
//!   S: T → U} ⊨ R[Y = Z]` — repeating dependencies arise.
//!
//! The rule functions here implement mild generalizations that build the
//! necessary IND2 projections into the matching (each is sound by composing
//! the proposition with IND2 and FD projectivity; see the per-function
//! docs). [`Saturator`] closes a dependency set under all of them plus RD
//! bookkeeping and IND composition.
//!
//! **Completeness caveat.** Theorem 7.1 of the paper proves that *no* k-ary
//! axiomatization of FDs + INDs (+ RDs) is complete, and Mitchell and
//! Chandra–Vardi later proved the joint implication problem undecidable.
//! The saturator is therefore a documented *sound semi-decision procedure*:
//! everything it derives is implied, but it cannot derive everything.

use crate::fd::FdEngine;
use crate::ind::IndSolver;
use depkit_core::attr::{Attr, AttrSeq};
use depkit_core::dependency::{Dependency, Fd, Ind, Rd};
use depkit_core::intern::{AttrId, Catalog};
use depkit_core::schema::RelName;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Proposition 4.1, generalized: pull an FD back through an IND.
///
/// Requires `fd.rel = ind.rhs_rel` and every attribute of `fd` to occur in
/// `ind`'s right side. Writing `pos(a)` for `a`'s position in
/// `ind.rhs_attrs` and `pre(a) = ind.lhs_attrs[pos(a)]`, the result is
/// `ind.lhs_rel: pre(fd.lhs) → pre(fd.rhs − fd.lhs)`.
///
/// Soundness: project `ind` by IND2 onto the positions of
/// `fd.lhs ++ (fd.rhs − fd.lhs)` to get `R[XY] ⊆ S[TU']` with
/// `U' = fd.rhs − fd.lhs`; `S: T → U'` follows from `fd` by Armstrong
/// decomposition; Proposition 4.1 applies verbatim.
pub fn pullback_fd(ind: &Ind, fd: &Fd) -> Option<Fd> {
    if fd.rel != ind.rhs_rel {
        return None;
    }
    let pre = |seq: &AttrSeq| -> Option<Vec<Attr>> {
        seq.attrs()
            .iter()
            .map(|a| {
                ind.rhs_attrs
                    .position(a)
                    .map(|p| ind.lhs_attrs.attrs()[p].clone())
            })
            .collect()
    };
    let rhs_reduced = fd.rhs.minus(&fd.lhs);
    let x = pre(&fd.lhs)?;
    let y = pre(&rhs_reduced)?;
    Some(Fd::new(
        ind.lhs_rel.clone(),
        AttrSeq::new(x).expect("image of distinct attrs under injective map"),
        AttrSeq::new(y).expect("image of distinct attrs under injective map"),
    ))
}

/// Proposition 4.2, generalized: augment two INDs sharing an FD key.
///
/// Requires `i1` and `i2` to relate the same pair of relations, `fd` to
/// speak about the right relation, all of `fd.lhs` (the `T` of the
/// proposition) to occur in both right sides, and the left-side attributes
/// corresponding to `T` to be the *same sequence* `X` in both INDs. The
/// conclusion is `R[X ++ Y ++ Z] ⊆ S[T ++ U ++ V]` where `(Y, U)` are the
/// non-`T` columns of `i1` with `U ⊆ fd.rhs`, and `(Z, V)` are the non-`T`
/// columns of `i2`; pairs that would repeat an attribute on either side are
/// dropped (a sound projection of the full conclusion).
pub fn augment_ind(i1: &Ind, i2: &Ind, fd: &Fd) -> Option<Ind> {
    if i1.lhs_rel != i2.lhs_rel || i1.rhs_rel != i2.rhs_rel || fd.rel != i1.rhs_rel {
        return None;
    }
    // Positions of T in each IND's right side, and the X they induce.
    let t = &fd.lhs;
    let x1: Option<Vec<Attr>> = t
        .attrs()
        .iter()
        .map(|a| {
            i1.rhs_attrs
                .position(a)
                .map(|p| i1.lhs_attrs.attrs()[p].clone())
        })
        .collect();
    let x2: Option<Vec<Attr>> = t
        .attrs()
        .iter()
        .map(|a| {
            i2.rhs_attrs
                .position(a)
                .map(|p| i2.lhs_attrs.attrs()[p].clone())
        })
        .collect();
    let (x1, x2) = (x1?, x2?);
    if x1 != x2 {
        return None;
    }

    let fd_rhs_set: BTreeSet<&Attr> = fd.rhs.attrs().iter().collect();
    let t_set: BTreeSet<&Attr> = t.attrs().iter().collect();

    let mut lhs: Vec<Attr> = x1;
    let mut rhs: Vec<Attr> = t.attrs().to_vec();

    let push_pair = |l: &Attr, r: &Attr, lhs: &mut Vec<Attr>, rhs: &mut Vec<Attr>| {
        if !lhs.contains(l) && !rhs.contains(r) {
            lhs.push(l.clone());
            rhs.push(r.clone());
        }
    };

    // (Y, U): i1's non-T columns whose right attribute is functionally
    // determined by T (i.e. lies in fd.rhs).
    for (p, r_attr) in i1.rhs_attrs.attrs().iter().enumerate() {
        if !t_set.contains(r_attr) && fd_rhs_set.contains(r_attr) {
            push_pair(&i1.lhs_attrs.attrs()[p], r_attr, &mut lhs, &mut rhs);
        }
    }
    // (Z, V): i2's non-T columns, unconditionally.
    for (p, r_attr) in i2.rhs_attrs.attrs().iter().enumerate() {
        if !t_set.contains(r_attr) {
            push_pair(&i2.lhs_attrs.attrs()[p], r_attr, &mut lhs, &mut rhs);
        }
    }

    let conclusion = Ind::new(
        i1.lhs_rel.clone(),
        AttrSeq::new(lhs).expect("duplicates were dropped"),
        i1.rhs_rel.clone(),
        AttrSeq::new(rhs).expect("duplicates were dropped"),
    )
    .expect("sides grew in lockstep");
    Some(conclusion)
}

/// Proposition 4.3, generalized: derive repeating dependencies.
///
/// When `i1` and `i2` map the same left-side sequence `X` onto the FD key
/// `T = fd.lhs` inside the same right relation, every attribute `u` of
/// `fd.rhs` that occurs in **both** right sides forces the corresponding
/// left attributes to be equal in every tuple: the unary RDs
/// `R[y = z]` with `y = pre_1(u)`, `z = pre_2(u)`.
pub fn derive_rds(i1: &Ind, i2: &Ind, fd: &Fd) -> Vec<Rd> {
    if i1.lhs_rel != i2.lhs_rel || i1.rhs_rel != i2.rhs_rel || fd.rel != i1.rhs_rel {
        return Vec::new();
    }
    let t = &fd.lhs;
    let x1: Option<Vec<&Attr>> = t
        .attrs()
        .iter()
        .map(|a| i1.rhs_attrs.position(a).map(|p| &i1.lhs_attrs.attrs()[p]))
        .collect();
    let x2: Option<Vec<&Attr>> = t
        .attrs()
        .iter()
        .map(|a| i2.rhs_attrs.position(a).map(|p| &i2.lhs_attrs.attrs()[p]))
        .collect();
    match (x1, x2) {
        (Some(x1), Some(x2)) if x1 == x2 => {}
        _ => return Vec::new(),
    }
    let t_set: BTreeSet<&Attr> = t.attrs().iter().collect();
    let mut out = Vec::new();
    for u in fd.rhs.attrs() {
        if t_set.contains(u) {
            continue;
        }
        if let (Some(p1), Some(p2)) = (i1.rhs_attrs.position(u), i2.rhs_attrs.position(u)) {
            let y = &i1.lhs_attrs.attrs()[p1];
            let z = &i2.lhs_attrs.attrs()[p2];
            if y != z {
                out.push(
                    Rd::new(
                        i1.lhs_rel.clone(),
                        AttrSeq::new(vec![y.clone()]).expect("single attr"),
                        AttrSeq::new(vec![z.clone()]).expect("single attr"),
                    )
                    .expect("unary")
                    .canonical(),
                );
            }
        }
    }
    out
}

/// Pull an RD back through an IND: if `S[c = d]` holds and `R[..a..b..] ⊆
/// S[..c..d..]` maps `a ↦ c`, `b ↦ d`, then `R[a = b]` holds.
pub fn rd_pullback(ind: &Ind, rd: &Rd) -> Vec<Rd> {
    if rd.rel != ind.rhs_rel {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (c, d) in rd.lhs.attrs().iter().zip(rd.rhs.attrs()) {
        if let (Some(pc), Some(pd)) = (ind.rhs_attrs.position(c), ind.rhs_attrs.position(d)) {
            let a = &ind.lhs_attrs.attrs()[pc];
            let b = &ind.lhs_attrs.attrs()[pd];
            if a != b {
                out.push(
                    Rd::new(
                        ind.lhs_rel.clone(),
                        AttrSeq::new(vec![a.clone()]).expect("single attr"),
                        AttrSeq::new(vec![b.clone()]).expect("single attr"),
                    )
                    .expect("unary")
                    .canonical(),
                );
            }
        }
    }
    out
}

/// The FDs implied by a unary RD: `R[A = B] ⊨ {R: A → B, R: B → A}`.
pub fn rd_to_fds(rd: &Rd) -> Vec<Fd> {
    rd.unary_decomposition()
        .into_iter()
        .flat_map(|u| {
            [
                Fd::new(u.rel.clone(), u.lhs.clone(), u.rhs.clone()),
                Fd::new(u.rel.clone(), u.rhs, u.lhs),
            ]
        })
        .collect()
}

/// Caps that keep saturation terminating on adversarial inputs.
#[derive(Debug, Clone, Copy)]
pub struct SaturationLimits {
    /// Maximum fixpoint rounds.
    pub max_rounds: usize,
    /// Maximum number of materialized INDs.
    pub max_inds: usize,
    /// Maximum number of materialized FDs.
    pub max_fds: usize,
}

impl Default for SaturationLimits {
    fn default() -> Self {
        SaturationLimits {
            max_rounds: 32,
            max_inds: 4096,
            max_fds: 4096,
        }
    }
}

/// Rule toggles for ablation studies: disable individual interaction
/// rules to measure what each contributes (everything stays sound; less
/// gets derived).
#[derive(Debug, Clone, Copy)]
pub struct SaturationOptions {
    /// Proposition 4.1 (FD pullback through INDs).
    pub pullback: bool,
    /// Proposition 4.2 (IND augmentation).
    pub augmentation: bool,
    /// Proposition 4.3 and the RD machinery (RD generation, RD→FD,
    /// RD pullback, RD transitivity).
    pub rd_rules: bool,
    /// IND composition (IND3 with inline IND2).
    pub composition: bool,
}

impl Default for SaturationOptions {
    fn default() -> Self {
        SaturationOptions {
            pullback: true,
            augmentation: true,
            rd_rules: true,
            composition: true,
        }
    }
}

/// A sound (necessarily incomplete — Theorem 7.1) saturation engine for
/// FDs, INDs, and RDs together.
///
/// The engine materializes FDs, INDs, and unary RDs and closes them under:
/// Armstrong reasoning (via [`FdEngine`] at query time), IND1–IND3 (via
/// [`IndSolver`] at query time, plus explicit composition so the Section 4
/// rules can fire on composed INDs), Propositions 4.1/4.2/4.3, RD
/// symmetry/transitivity, RD-to-FD conversion, and RD pullback through INDs.
#[derive(Debug, Clone)]
pub struct Saturator {
    fds: BTreeSet<Fd>,
    inds: BTreeSet<Ind>,
    rds: BTreeSet<Rd>,
    limits: SaturationLimits,
    options: SaturationOptions,
    truncated: bool,
    saturated: bool,
    /// Compiled query engines over the materialized sets, built once per
    /// saturation instead of re-cloning every dependency per `implies` call.
    /// `None` whenever the sets have changed since the engines were built.
    engines: Option<QueryEngines>,
}

/// Compiled engines the saturator answers queries with: one id-compiled
/// [`FdEngine`] per relation that has FDs, plus one [`IndSolver`] over the
/// materialized INDs (which auto-dispatches typed queries).
#[derive(Debug, Clone)]
struct QueryEngines {
    fd_by_rel: HashMap<RelName, FdEngine>,
    ind: IndSolver,
}

impl QueryEngines {
    fn build(fds: &BTreeSet<Fd>, inds: &BTreeSet<Ind>) -> Self {
        // Group once, then compile each relation's engine from its own
        // slice (FdEngine::new would otherwise re-filter the full set).
        let mut grouped: HashMap<RelName, Vec<Fd>> = HashMap::new();
        for fd in fds {
            grouped.entry(fd.rel.clone()).or_default().push(fd.clone());
        }
        let fd_by_rel = grouped
            .into_iter()
            .map(|(rel, rel_fds)| (rel.clone(), FdEngine::new(rel, &rel_fds)))
            .collect();
        let all_inds: Vec<Ind> = inds.iter().cloned().collect();
        QueryEngines {
            fd_by_rel,
            ind: IndSolver::new(&all_inds),
        }
    }
}

impl Saturator {
    /// Create a saturator over the given dependencies (EMVDs are ignored).
    pub fn new(deps: &[Dependency]) -> Self {
        Self::with_limits(deps, SaturationLimits::default())
    }

    /// Create a saturator with explicit resource caps.
    pub fn with_limits(deps: &[Dependency], limits: SaturationLimits) -> Self {
        Self::with_options(deps, limits, SaturationOptions::default())
    }

    /// Create a saturator with explicit caps and rule toggles (ablation).
    pub fn with_options(
        deps: &[Dependency],
        limits: SaturationLimits,
        options: SaturationOptions,
    ) -> Self {
        let mut s = Saturator {
            fds: BTreeSet::new(),
            inds: BTreeSet::new(),
            rds: BTreeSet::new(),
            limits,
            options,
            truncated: false,
            saturated: false,
            engines: None,
        };
        for d in deps {
            match d {
                Dependency::Fd(f) => {
                    s.fds.insert(f.clone());
                }
                Dependency::Ind(i) => {
                    s.inds.insert(i.clone());
                }
                Dependency::Rd(r) => {
                    for u in r.unary_decomposition() {
                        s.rds.insert(u.canonical());
                    }
                }
                Dependency::Emvd(_) => {}
            }
        }
        s
    }

    /// Whether saturation hit a resource cap (results remain sound but may
    /// be weaker).
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// The materialized FDs.
    pub fn fds(&self) -> &BTreeSet<Fd> {
        &self.fds
    }

    /// The materialized INDs.
    pub fn inds(&self) -> &BTreeSet<Ind> {
        &self.inds
    }

    /// The materialized unary RDs.
    pub fn rds(&self) -> &BTreeSet<Rd> {
        &self.rds
    }

    /// Insert a dependency discovered externally (e.g. by the finite-
    /// implication counting rule) and mark the engine for re-saturation.
    /// Returns whether anything new was added.
    pub fn add(&mut self, dep: &Dependency) -> bool {
        let added = match dep {
            Dependency::Fd(f) => self.fds.insert(f.clone()),
            Dependency::Ind(i) => self.inds.insert(i.clone()),
            Dependency::Rd(r) => {
                let mut any = false;
                for u in r.unary_decomposition() {
                    any |= self.rds.insert(u.canonical());
                }
                any
            }
            Dependency::Emvd(_) => false,
        };
        if added {
            self.saturated = false;
            self.engines = None;
        }
        added
    }

    /// Run rules to a fixpoint (or until a cap is reached). On return the
    /// compiled query engines are rebuilt over the materialized sets, so
    /// subsequent [`Saturator::implies`] calls pay no construction cost.
    pub fn saturate(&mut self) {
        if self.saturated {
            return;
        }
        self.engines = None;
        for _round in 0..self.limits.max_rounds {
            let mut new_fds: Vec<Fd> = Vec::new();
            let mut new_inds: Vec<Ind> = Vec::new();
            let mut new_rds: Vec<Rd> = Vec::new();

            // RD transitivity via union-find per relation.
            if self.options.rd_rules {
                new_rds.extend(self.rd_transitive_closure());

                // RD -> FD.
                for rd in &self.rds {
                    for f in rd_to_fds(rd) {
                        if !f.is_trivial() && !self.fds.contains(&f) {
                            new_fds.push(f);
                        }
                    }
                }
            }

            for ind in &self.inds {
                // Proposition 4.1.
                if self.options.pullback {
                    for fd in &self.fds {
                        if let Some(f) = pullback_fd(ind, fd) {
                            if !f.is_trivial() && !self.fds.contains(&f) {
                                new_fds.push(f);
                            }
                        }
                    }
                }
                // RD pullback.
                if self.options.rd_rules {
                    for rd in &self.rds {
                        for r in rd_pullback(ind, rd) {
                            if !r.is_trivial() && !self.rds.contains(&r) {
                                new_rds.push(r);
                            }
                        }
                    }
                }
            }

            // Propositions 4.2 and 4.3, plus IND composition.
            for i1 in &self.inds {
                for i2 in &self.inds {
                    for fd in &self.fds {
                        if self.options.augmentation {
                            if let Some(ind) = augment_ind(i1, i2, fd) {
                                if !ind.is_trivial() && !self.inds.contains(&ind) {
                                    new_inds.push(ind);
                                }
                            }
                        }
                        if self.options.rd_rules {
                            for rd in derive_rds(i1, i2, fd) {
                                if !rd.is_trivial() && !self.rds.contains(&rd) {
                                    new_rds.push(rd);
                                }
                            }
                        }
                    }
                    if self.options.composition {
                        if let Some(ind) = compose_inds(i1, i2) {
                            if !ind.is_trivial() && !self.inds.contains(&ind) {
                                new_inds.push(ind);
                            }
                        }
                    }
                }
            }

            let mut changed = false;
            for f in new_fds {
                if self.fds.len() >= self.limits.max_fds {
                    self.truncated = true;
                    break;
                }
                changed |= self.fds.insert(f);
            }
            for i in new_inds {
                if self.inds.len() >= self.limits.max_inds {
                    self.truncated = true;
                    break;
                }
                changed |= self.inds.insert(i);
            }
            for r in new_rds {
                changed |= self.rds.insert(r);
            }
            if !changed {
                self.saturated = true;
                break;
            }
        }
        if !self.saturated {
            self.truncated = true;
        }
        self.engines = Some(QueryEngines::build(&self.fds, &self.inds));
    }

    /// RD transitivity as a union–find over interned attribute ids: one
    /// catalog per relation, constant-ish work per union, then one pass per
    /// equivalence class to emit the missing pairs.
    fn rd_transitive_closure(&self) -> Vec<Rd> {
        let mut per_rel: BTreeMap<RelName, (Catalog, DenseUnionFind)> = BTreeMap::new();
        for rd in &self.rds {
            let (cat, uf) = per_rel
                .entry(rd.rel.clone())
                .or_insert_with(|| (Catalog::new(), DenseUnionFind::default()));
            let a = cat.intern_attr(&rd.lhs.attrs()[0]);
            let b = cat.intern_attr(&rd.rhs.attrs()[0]);
            uf.ensure(cat.attr_count());
            uf.union(a, b);
        }
        let mut out = Vec::new();
        for (rel, (cat, mut uf)) in per_rel {
            // Group ids by root.
            let mut classes: HashMap<u32, Vec<AttrId>> = HashMap::new();
            for i in 0..cat.attr_count() {
                let id = AttrId::from_index(i);
                classes.entry(uf.find(id)).or_default().push(id);
            }
            for group in classes.values() {
                for (i, &x) in group.iter().enumerate() {
                    for &y in &group[i + 1..] {
                        let rd = Rd::new(
                            rel.clone(),
                            AttrSeq::new(vec![cat.resolve_attr(x)]).expect("single"),
                            AttrSeq::new(vec![cat.resolve_attr(y)]).expect("single"),
                        )
                        .expect("unary")
                        .canonical();
                        if !self.rds.contains(&rd) {
                            out.push(rd);
                        }
                    }
                }
            }
        }
        out
    }

    /// Decide whether the saturated set implies `dep`. Sound; incomplete in
    /// general (see module docs). Call [`Saturator::saturate`] first — the
    /// compiled engines it builds make each query engine-construction-free
    /// (queries before saturation, or after `add`, build throwaway engines).
    pub fn implies(&self, dep: &Dependency) -> bool {
        if dep.is_trivial() {
            return true;
        }
        match dep {
            Dependency::Fd(f) => match &self.engines {
                Some(e) => e
                    .fd_by_rel
                    .get(&f.rel)
                    .is_some_and(|engine| engine.implies(f)),
                None => {
                    let fds: Vec<Fd> = self.fds.iter().cloned().collect();
                    FdEngine::new(f.rel.clone(), &fds).implies(f)
                }
            },
            Dependency::Ind(i) => match &self.engines {
                Some(e) => e.ind.implies(i),
                None => {
                    let inds: Vec<Ind> = self.inds.iter().cloned().collect();
                    IndSolver::new(&inds).implies(i)
                }
            },
            Dependency::Rd(r) => r
                .unary_decomposition()
                .into_iter()
                .all(|u| self.rds.contains(&u.canonical())),
            Dependency::Emvd(_) => false,
        }
    }

    /// All materialized dependencies.
    pub fn derived(&self) -> Vec<Dependency> {
        let mut out: Vec<Dependency> = Vec::new();
        out.extend(self.fds.iter().cloned().map(Dependency::from));
        out.extend(self.inds.iter().cloned().map(Dependency::from));
        out.extend(self.rds.iter().cloned().map(Dependency::from));
        out
    }
}

/// A minimal union–find over dense [`AttrId`]s (path-halving find, union by
/// attachment order), sized on demand by [`DenseUnionFind::ensure`].
#[derive(Debug, Clone, Default)]
struct DenseUnionFind {
    parent: Vec<u32>,
}

impl DenseUnionFind {
    /// Grow to cover ids `0..n`, each new id its own class.
    fn ensure(&mut self, n: usize) {
        let old = self.parent.len();
        self.parent.extend(old as u32..n as u32);
    }

    fn find(&mut self, id: AttrId) -> u32 {
        let mut x = id.index() as u32;
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: AttrId, b: AttrId) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

/// IND3 with an inline IND2: compose `R[X] ⊆ S[Y]` with `S[Y'] ⊆ T[Z]`
/// whenever every attribute of `Y` occurs in `Y'`, producing
/// `R[X] ⊆ T[Z∘map]`.
pub fn compose_inds(i1: &Ind, i2: &Ind) -> Option<Ind> {
    if i1.rhs_rel != i2.lhs_rel {
        return None;
    }
    let mapped: Option<Vec<Attr>> = i1
        .rhs_attrs
        .attrs()
        .iter()
        .map(|a| {
            i2.lhs_attrs
                .position(a)
                .map(|p| i2.rhs_attrs.attrs()[p].clone())
        })
        .collect();
    let rhs = AttrSeq::new(mapped?).expect("injective mapping of distinct attrs");
    Some(
        Ind::new(
            i1.lhs_rel.clone(),
            i1.lhs_attrs.clone(),
            i2.rhs_rel.clone(),
            rhs,
        )
        .expect("lengths equal"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::parser::parse_dependency;

    fn fd(src: &str) -> Fd {
        match parse_dependency(src).unwrap() {
            Dependency::Fd(f) => f,
            _ => panic!("not an FD"),
        }
    }

    fn ind(src: &str) -> Ind {
        match parse_dependency(src).unwrap() {
            Dependency::Ind(i) => i,
            _ => panic!("not an IND"),
        }
    }

    #[test]
    fn proposition_4_1_literal() {
        // {R[X Y] ⊆ S[T U], S: T -> U} ⊨ R: X -> Y.
        let i = ind("R[X, Y] <= S[T, U]");
        let f = fd("S: T -> U");
        let got = pullback_fd(&i, &f).unwrap();
        assert_eq!(got.to_string(), "R: X -> Y");
    }

    #[test]
    fn proposition_4_1_with_permutation() {
        // FD attributes scattered in the IND's right side.
        let i = ind("R[A, B, C] <= S[U, T, W]");
        let f = fd("S: T -> U");
        let got = pullback_fd(&i, &f).unwrap();
        assert_eq!(got.to_string(), "R: B -> A");
    }

    #[test]
    fn proposition_4_1_requires_coverage() {
        let i = ind("R[A] <= S[T]");
        let f = fd("S: T -> U"); // U not in the IND's right side
        assert!(pullback_fd(&i, &f).is_none());
    }

    #[test]
    fn proposition_4_2_literal() {
        // {R[X Y] ⊆ S[T U], R[X Z] ⊆ S[T V], S: T -> U} ⊨ R[X Y Z] ⊆ S[T U V].
        let i1 = ind("R[X, Y] <= S[T, U]");
        let i2 = ind("R[X, Z] <= S[T, V]");
        let f = fd("S: T -> U");
        let got = augment_ind(&i1, &i2, &f).unwrap();
        assert_eq!(got.to_string(), "R[X, Y, Z] <= S[T, U, V]");
    }

    #[test]
    fn proposition_4_2_requires_same_x() {
        let i1 = ind("R[X, Y] <= S[T, U]");
        let i2 = ind("R[W, Z] <= S[T, V]");
        let f = fd("S: T -> U");
        assert!(augment_ind(&i1, &i2, &f).is_none());
    }

    #[test]
    fn proposition_4_3_literal() {
        // {R[X Y] ⊆ S[T U], R[X Z] ⊆ S[T U], S: T -> U} ⊨ R[Y = Z].
        let i1 = ind("R[X, Y] <= S[T, U]");
        let i2 = ind("R[X, Z] <= S[T, U]");
        let f = fd("S: T -> U");
        let rds = derive_rds(&i1, &i2, &f);
        assert_eq!(rds.len(), 1);
        assert_eq!(rds[0].to_string(), "R[Y = Z]");
    }

    #[test]
    fn rd_pullback_through_ind() {
        let i = ind("R[A, B] <= S[C, D]");
        let rd = Rd::new(
            "S",
            depkit_core::attr::attrs(&["C"]),
            depkit_core::attr::attrs(&["D"]),
        )
        .unwrap();
        let got = rd_pullback(&i, &rd);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].to_string(), "R[A = B]");
    }

    #[test]
    fn compose_with_projection() {
        let i1 = ind("R[A] <= S[C]");
        let i2 = ind("S[C, D] <= T[E, F]");
        let got = compose_inds(&i1, &i2).unwrap();
        assert_eq!(got.to_string(), "R[A] <= T[E]");
    }

    #[test]
    fn saturator_derives_proposition_chain() {
        // From the manager example: MGR[N, D] ⊆ EMP[N, D] and EMP: N -> D
        // should yield MGR: N -> D by Proposition 4.1.
        let deps: Vec<Dependency> = vec![
            parse_dependency("MGR[N, D] <= EMP[N, D]").unwrap(),
            parse_dependency("EMP: N -> D").unwrap(),
        ];
        let mut sat = Saturator::new(&deps);
        sat.saturate();
        assert!(!sat.truncated());
        assert!(sat.implies(&parse_dependency("MGR: N -> D").unwrap()));
        assert!(!sat.implies(&parse_dependency("EMP[N] <= MGR[N]").unwrap()));
    }

    #[test]
    fn saturator_derives_rd_and_its_fds() {
        let deps: Vec<Dependency> = vec![
            parse_dependency("R[X, Y] <= S[T, U]").unwrap(),
            parse_dependency("R[X, Z] <= S[T, U]").unwrap(),
            parse_dependency("S: T -> U").unwrap(),
        ];
        let mut sat = Saturator::new(&deps);
        sat.saturate();
        assert!(sat.implies(&parse_dependency("R[Y = Z]").unwrap()));
        // RD implies both FDs.
        assert!(sat.implies(&parse_dependency("R: Y -> Z").unwrap()));
        assert!(sat.implies(&parse_dependency("R: Z -> Y").unwrap()));
    }

    #[test]
    fn saturator_rd_transitivity() {
        let deps: Vec<Dependency> = vec![
            parse_dependency("R[A = B]").unwrap(),
            parse_dependency("R[B = C]").unwrap(),
        ];
        let mut sat = Saturator::new(&deps);
        sat.saturate();
        assert!(sat.implies(&parse_dependency("R[A = C]").unwrap()));
        assert!(sat.implies(&parse_dependency("R[C = A]").unwrap()));
    }

    #[test]
    fn ablation_disabling_pullback_loses_proposition_4_1() {
        let deps: Vec<Dependency> = vec![
            parse_dependency("MGR[N, D] <= EMP[N, D]").unwrap(),
            parse_dependency("EMP: N -> D").unwrap(),
        ];
        let mut sat = Saturator::with_options(
            &deps,
            SaturationLimits::default(),
            SaturationOptions {
                pullback: false,
                ..SaturationOptions::default()
            },
        );
        sat.saturate();
        assert!(!sat.implies(&parse_dependency("MGR: N -> D").unwrap()));
    }

    #[test]
    fn ablation_disabling_composition_loses_transitive_feeding() {
        // Proposition 4.1 through a COMPOSED IND: needs composition on.
        let deps: Vec<Dependency> = vec![
            parse_dependency("A[X] <= B[Y]").unwrap(),
            parse_dependency("B[Y] <= C[Z]").unwrap(),
        ];
        let target = parse_dependency("A[X] <= C[Z]").unwrap();
        // The IndSolver inside `implies` handles IND3 regardless, so the
        // materialized set is what differs: with composition the composed
        // IND is materialized, without it only the originals are.
        let mut with = Saturator::new(&deps);
        with.saturate();
        assert!(with.inds().iter().any(|i| i.to_string() == "A[X] <= C[Z]"));
        let mut without = Saturator::with_options(
            &deps,
            SaturationLimits::default(),
            SaturationOptions {
                composition: false,
                ..SaturationOptions::default()
            },
        );
        without.saturate();
        assert!(!without
            .inds()
            .iter()
            .any(|i| i.to_string() == "A[X] <= C[Z]"));
        // Queries still answer via IND1-3 (the solver is complete for
        // INDs alone) — the ablation affects rule feeding, not queries.
        assert!(without.implies(&target));
    }

    #[test]
    fn ablation_disabling_rd_rules_loses_proposition_4_3() {
        let deps: Vec<Dependency> = vec![
            parse_dependency("R[X, Y] <= S[T, U]").unwrap(),
            parse_dependency("R[X, Z] <= S[T, U]").unwrap(),
            parse_dependency("S: T -> U").unwrap(),
        ];
        let mut sat = Saturator::with_options(
            &deps,
            SaturationLimits::default(),
            SaturationOptions {
                rd_rules: false,
                ..SaturationOptions::default()
            },
        );
        sat.saturate();
        assert!(!sat.implies(&parse_dependency("R[Y = Z]").unwrap()));
    }

    #[test]
    fn saturator_is_idempotent() {
        let deps: Vec<Dependency> = vec![
            parse_dependency("R[A] <= S[B]").unwrap(),
            parse_dependency("S: B -> C").unwrap(),
        ];
        let mut sat = Saturator::new(&deps);
        sat.saturate();
        let before = sat.derived();
        sat.saturate();
        assert_eq!(before, sat.derived());
    }
}
