//! # depkit-solver — implication engines for FDs, INDs, and their interaction
//!
//! Four engines, mapped to the paper (Casanova–Fagin–Papadimitriou 1982/84):
//!
//! * [`fd`] — functional-dependency machinery: the linear-time attribute
//!   closure of Beeri & Bernstein (cited as the FD analogue of the paper's
//!   IND decision procedure in Section 3), key enumeration, minimal covers.
//! * [`ind`] — the IND decision procedure of Section 3: the worklist search
//!   over expressions `S[X]` justified by Corollary 3.2, with the
//!   polynomial-time special cases the paper notes (bounded arity, typed
//!   INDs) and instrumentation used by the Landau lower-bound experiment.
//! * [`interact`] — the FD/IND interaction rules of Section 4
//!   (Propositions 4.1, 4.2, 4.3) plus repeating-dependency rules, and a
//!   sound saturation engine. By Theorem 7.1 **no** such finitary engine can
//!   be complete; the saturator is documented as a sound semi-decision
//!   procedure.
//! * [`finite`] — finite-implication reasoning: the cardinality-cycle
//!   ("counting") rule that powers Theorem 4.4 and the soundness half of
//!   Theorem 6.1, layered on the saturator.
//!
//! The FD and IND engines are *compiled*: they intern every symbol of their
//! input into a `depkit_core::intern::Catalog` at construction and run their
//! fixpoints over dense ids (bit sets for the FD closure, `(RelId, IdSeq)`
//! keys for the IND search). The pre-refactor string-based implementations
//! live on in [`reference`][mod@reference] as the executable specification used by the
//! differential property tests and the two-representation benches.
//!
//! Beyond implication, the crate hosts the *serving* workload the
//! ROADMAP's north star calls for:
//!
//! * [`incremental`] — the delta-driven satisfaction engine: a
//!   [`Validator`] compiles `(Schema, Σ_FD, Σ_IND)` into refcounted
//!   projection indexes and FD witness maps over interned ids, then
//!   validates [`Delta`](depkit_core::delta::Delta) batches in time
//!   proportional to the delta instead of the database, with
//!   [`full_violations`] as the
//!   full-revalidation reference path.
//! * [`discover`][mod@discover] — the dependency *discovery* engine, the
//!   inverse workload: profile a database into the FDs and INDs it
//!   satisfies (SPIDER-style unary IND mining over interned value ids,
//!   composed n-ary IND validation, TANE-style partition-refinement FD
//!   search) and prune the mined set to a minimal cover through the
//!   implication engines above — discovery proposes, implication
//!   disposes.
//!
//! Two design-oriented extensions round out the toolbox the paper's
//! introduction motivates:
//!
//! * [`armstrong`] — Armstrong relations for FD sets (instances satisfying
//!   exactly the implied FDs; cf. the paper's use of Fagin's Armstrong
//!   databases and its own Figure 6.1);
//! * [`design`] — BCNF analysis/decomposition and 3NF synthesis, with the
//!   typed INDs each decomposition induces (exactly how INDs arise from
//!   schema design, per Section 1).

pub mod armstrong;
pub mod design;
pub mod discover;
pub mod fd;
pub mod finite;
pub mod incremental;
pub mod ind;
pub mod interact;
pub mod reference;

pub use armstrong::armstrong_relation;
pub use discover::{discover, Discovery, DiscoveryConfig, DiscoveryStats};
pub use fd::FdEngine;
pub use finite::FiniteEngine;
pub use incremental::{
    full_violations, CatalogState, CommitOutcome, CommitSink, Durability, DurabilityConfig,
    RecoveryReport, Session, Snapshot, Validator, ViolationKey,
};
pub use ind::{Expression, IndSolver, SearchStats};
pub use interact::Saturator;
pub use reference::{ReferenceFdEngine, ReferenceIndSolver};
