//! Pre-refactor string-based reference engines.
//!
//! [`ReferenceFdEngine`] and [`ReferenceIndSolver`] are the original
//! implementations of the FD closure and the Corollary 3.2 IND search,
//! operating directly on [`Attr`]/[`AttrSeq`] heap strings. They are kept —
//! deliberately unoptimized — as the *executable specification* of the
//! compiled engines in [`crate::fd`] and [`crate::ind`]:
//!
//! * the differential property tests (`tests/compiled_vs_reference.rs` at
//!   the workspace root) assert the compiled engines agree with these on
//!   `closure`, `implies`, and walk verifiability, including the Landau
//!   `σ(γ)` families from `depkit-perm`;
//! * the `fd_closure` and `ind_implication` benches run both
//!   representations side by side, so the interning layer's win is measured
//!   rather than assumed.
//!
//! Do not add features here: new behavior belongs in the compiled engines,
//! with this module only tracking what is needed for the comparison to stay
//! meaningful.

use depkit_core::attr::{Attr, AttrSeq};
use depkit_core::dependency::{Fd, Ind};
use depkit_core::schema::RelName;
use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::ind::{apply_ind2, Expression, SearchStats, WalkStep};

/// The original string-based FD-implication engine (Beeri–Bernstein closure
/// over `BTreeSet<Attr>` with a `HashMap<Attr, Vec<usize>>` watcher table).
#[derive(Debug, Clone)]
pub struct ReferenceFdEngine {
    rel: RelName,
    fds: Vec<Fd>,
    watchers: HashMap<Attr, Vec<usize>>,
}

impl ReferenceFdEngine {
    /// Build an engine from the FDs that speak about `rel`.
    pub fn new(rel: impl Into<RelName>, fds: &[Fd]) -> Self {
        let rel = rel.into();
        let fds: Vec<Fd> = fds.iter().filter(|f| f.rel == rel).cloned().collect();
        let mut watchers: HashMap<Attr, Vec<usize>> = HashMap::new();
        for (i, f) in fds.iter().enumerate() {
            for a in f.lhs.attrs() {
                watchers.entry(a.clone()).or_default().push(i);
            }
        }
        ReferenceFdEngine { rel, fds, watchers }
    }

    /// The attribute closure `X⁺` of `start` under the engine's FDs.
    pub fn closure(&self, start: &AttrSeq) -> BTreeSet<Attr> {
        let mut closure: BTreeSet<Attr> = start.attrs().iter().cloned().collect();
        let mut missing: Vec<usize> = self.fds.iter().map(|f| f.lhs.len()).collect();
        let mut queue: VecDeque<Attr> = closure.iter().cloned().collect();

        let fire = |i: usize, closure: &mut BTreeSet<Attr>, queue: &mut VecDeque<Attr>| {
            for a in self.fds[i].rhs.attrs() {
                if closure.insert(a.clone()) {
                    queue.push_back(a.clone());
                }
            }
        };
        for (i, &m) in missing.iter().enumerate() {
            if m == 0 {
                fire(i, &mut closure, &mut queue);
            }
        }
        while let Some(a) = queue.pop_front() {
            if let Some(watching) = self.watchers.get(&a) {
                for &i in watching {
                    missing[i] -= 1;
                    if missing[i] == 0 {
                        fire(i, &mut closure, &mut queue);
                    }
                }
            }
        }
        closure
    }

    /// Whether the engine's FDs logically imply `target`.
    pub fn implies(&self, target: &Fd) -> bool {
        if target.rel != self.rel {
            return target.is_trivial();
        }
        let c = self.closure(&target.lhs);
        target.rhs.attrs().iter().all(|a| c.contains(a))
    }
}

/// The original string-based Corollary 3.2 decision procedure: breadth-first
/// search over [`Expression`]s, hashing whole `(RelName, AttrSeq)` keys.
///
/// Unlike [`crate::ind::IndSolver`], this solver performs **no** Σ
/// deduplication and no typed-fragment dispatch — it is the plain worklist
/// procedure of the paper.
#[derive(Debug, Clone)]
pub struct ReferenceIndSolver {
    sigma: Vec<Ind>,
    by_lhs_rel: HashMap<RelName, Vec<usize>>,
}

impl ReferenceIndSolver {
    /// Build a solver from a set of INDs.
    pub fn new(sigma: &[Ind]) -> Self {
        let sigma: Vec<Ind> = sigma.to_vec();
        let mut by_lhs_rel: HashMap<RelName, Vec<usize>> = HashMap::new();
        for (i, ind) in sigma.iter().enumerate() {
            by_lhs_rel.entry(ind.lhs_rel.clone()).or_default().push(i);
        }
        ReferenceIndSolver { sigma, by_lhs_rel }
    }

    /// The IND set `Σ`, exactly as given.
    pub fn sigma(&self) -> &[Ind] {
        &self.sigma
    }

    /// Decide `Σ ⊨ target`.
    pub fn implies(&self, target: &Ind) -> bool {
        self.search(target).0.is_some()
    }

    /// Decide `Σ ⊨ target`, returning search statistics.
    pub fn implies_with_stats(&self, target: &Ind) -> (bool, SearchStats) {
        let (walk, stats) = self.search(target);
        (walk.is_some(), stats)
    }

    /// Produce the Corollary 3.2 walk witnessing `Σ ⊨ target`, or `None`.
    pub fn walk(&self, target: &Ind) -> Option<Vec<WalkStep>> {
        self.search(target).0
    }

    fn search(&self, target: &Ind) -> (Option<Vec<WalkStep>>, SearchStats) {
        let start = Expression {
            rel: target.lhs_rel.clone(),
            attrs: target.lhs_attrs.clone(),
        };
        let goal = Expression {
            rel: target.rhs_rel.clone(),
            attrs: target.rhs_attrs.clone(),
        };
        let mut stats = SearchStats {
            expressions_visited: 1,
            ..SearchStats::default()
        };
        let mut parent: HashMap<Expression, Option<(Expression, usize)>> = HashMap::new();
        parent.insert(start.clone(), None);
        if start == goal {
            stats.walk_length = Some(1);
            return (
                Some(vec![WalkStep {
                    expr: start,
                    via: None,
                }]),
                stats,
            );
        }
        let mut queue = VecDeque::from([start]);
        while let Some(expr) = queue.pop_front() {
            let Some(candidates) = self.by_lhs_rel.get(&expr.rel) else {
                continue;
            };
            for &i in candidates {
                stats.applications_attempted += 1;
                let Some(next) = apply_ind2(&self.sigma[i], &expr) else {
                    continue;
                };
                match parent.entry(next.clone()) {
                    Entry::Occupied(_) => continue,
                    Entry::Vacant(slot) => {
                        slot.insert(Some((expr.clone(), i)));
                        stats.expressions_visited += 1;
                    }
                }
                if next == goal {
                    let walk = reconstruct(&parent, &next);
                    stats.walk_length = Some(walk.len());
                    return (Some(walk), stats);
                }
                queue.push_back(next);
            }
        }
        (None, stats)
    }
}

fn reconstruct(
    parent: &HashMap<Expression, Option<(Expression, usize)>>,
    end: &Expression,
) -> Vec<WalkStep> {
    let mut steps = Vec::new();
    let mut cur = end.clone();
    loop {
        match parent
            .get(&cur)
            .expect("every visited node has a parent entry")
        {
            Some((prev, via)) => {
                steps.push(WalkStep {
                    expr: cur.clone(),
                    via: Some(*via),
                });
                cur = prev.clone();
            }
            None => {
                steps.push(WalkStep {
                    expr: cur.clone(),
                    via: None,
                });
                break;
            }
        }
    }
    steps.reverse();
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::attr::attrs;
    use depkit_core::parser::parse_dependency;

    fn ind(src: &str) -> Ind {
        match parse_dependency(src).unwrap() {
            depkit_core::Dependency::Ind(i) => i,
            _ => panic!("not an IND: {src}"),
        }
    }

    #[test]
    fn reference_fd_engine_matches_textbook_closure() {
        let fds = vec![
            Fd::new("R", attrs(&["A"]), attrs(&["B"])),
            Fd::new("R", attrs(&["B"]), attrs(&["C"])),
        ];
        let eng = ReferenceFdEngine::new("R", &fds);
        let c = eng.closure(&attrs(&["A"]));
        assert_eq!(c.len(), 3);
        assert!(eng.implies(&Fd::new("R", attrs(&["A"]), attrs(&["C"]))));
        assert!(!eng.implies(&Fd::new("R", attrs(&["B"]), attrs(&["A"]))));
    }

    #[test]
    fn reference_ind_solver_walks_and_counts() {
        let sigma = vec![ind("R[A, B, C] <= R[B, C, A]")];
        let solver = ReferenceIndSolver::new(&sigma);
        let (yes, stats) = solver.implies_with_stats(&ind("R[A, B, C] <= R[C, A, B]"));
        assert!(yes);
        assert_eq!(stats.walk_length, Some(3));
        assert!(!solver.implies(&ind("R[A] <= S[A]")));
    }
}
