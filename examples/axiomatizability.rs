//! Theorems 5.1, 6.1, 7.1 live: why no finite (or k-ary) rule system can
//! capture the interaction of FDs and INDs.
//!
//! Run with: `cargo run --example axiomatizability`

use depkit_axiom::families::section6::{Section6, Section6Oracle};
use depkit_axiom::families::section7::Section7;
use depkit_axiom::kary::{close_under_k_ary, implication_closure_witness};
use depkit_core::Dependency;
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Section 6: finite implication --------------------------------
    let k = 2;
    let fam = Section6::new(k);
    println!("Section 6 family at k = {k} (two-attribute schemes, unary deps):");
    for d in fam.sigma() {
        println!("  {d}");
    }
    println!("  σ = {}", fam.target);

    println!(
        "\nthe cycle is k+1 = {} INDs long; dropping ANY one admits the",
        k + 1
    );
    println!("Figure 6.1 Armstrong database, so no ≤k of them imply anything new:");
    for missing in 0..=k {
        fam.verify_armstrong_property(missing)?;
        let d = fam.armstrong_database(missing);
        println!(
            "  rotation {missing}: {} tuples, satisfies Γ − {{{}}} exactly ✓",
            d.total_tuples(),
            fam.inds[missing]
        );
    }

    // The Theorem 5.1 pipeline: Γ is k-ary-closed but implies σ.
    let oracle = Section6Oracle::new(&fam);
    let universe = fam.universe();
    let gamma: BTreeSet<Dependency> = universe
        .iter()
        .filter(|d| fam.in_gamma(d))
        .cloned()
        .collect();
    let closed = close_under_k_ary(&universe, &gamma, k, &oracle);
    println!(
        "\nk-ary closure of Γ adds {} sentences (Γ is {}-ary closed)",
        closed.len() - gamma.len(),
        k
    );
    let witness = implication_closure_witness(&universe, &gamma, &oracle);
    println!(
        "...yet Γ implies, e.g., {:?} ∉ Γ",
        witness.map(|w| w.to_string())
    );
    println!("⇒ by Theorem 5.1, no {k}-ary complete axiomatization exists (finite implication).");

    // ---- Section 7: unrestricted implication --------------------------
    let n = 2;
    let fam7 = Section7::new(n);
    println!("\nSection 7 family at n = {n} (≤3-attribute schemes, unary FDs, binary INDs):");
    println!(
        "  {} INDs (λ), {} FDs; σ = {}",
        fam7.lambda.len(),
        fam7.sigma_fds.len(),
        fam7.target
    );

    let report = fam7
        .verify()
        .map_err(|e| format!("verification failed: {e}"))?;
    println!(
        "  Lemma 7.2: chase proves Σ ⊨ σ in {} rounds",
        report.chase_rounds
    );
    println!(
        "  Lemmas 7.4–7.6: witness databases exact over {} FDs and {} INDs",
        report.fd_universe, report.ind_universe
    );
    println!("  Lemmas 7.8–7.9: closure identities and break databases check for every j < n");
    println!("⇒ by Theorem 5.1, no k-ary complete axiomatization exists for any k < {n}");
    println!("  (and n is arbitrary, so for no k at all — Theorem 7.1).");

    // The practical upshot: the Section 4 interaction rules are sound but
    // necessarily incomplete.
    let mut sat = depkit_solver::interact::Saturator::new(&fam7.sigma());
    sat.saturate();
    println!(
        "\nsound k-ary saturator derives σ? {} — as Theorem 7.1 predicts",
        sat.implies(&fam7.target.clone().into())
    );
    Ok(())
}
