//! Theorem 4.4 live: the same two constraints imply different things over
//! finite databases and over unrestricted (possibly infinite) ones.
//!
//! `Σ = {R: A -> B, R[A] ⊆ R[B]}` forces, over FINITE relations, that the
//! inclusion reverses (`R[B] ⊆ R[A]`) and the key flips (`R: B -> A`) — a
//! pure counting argument. Over infinite relations both fail: Figures 4.1
//! and 4.2 of the paper are infinite witnesses, represented here exactly
//! as affine-pattern symbolic relations.
//!
//! Run with: `cargo run --example finite_vs_unrestricted`

use depkit_axiom::families::theorem44::Theorem44;
use depkit_core::prelude::*;
use depkit_solver::finite::FiniteEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fam = Theorem44::new();
    println!("Σ:");
    for d in &fam.sigma {
        println!("  {d}");
    }

    // Finite implication, via the counting engine.
    let engine = FiniteEngine::new(&fam.sigma);
    println!("\nover finite databases:");
    println!(
        "  Σ ⊨_fin {}?  {}",
        fam.target_ind,
        engine.implies(&fam.target_ind)
    );
    println!(
        "  Σ ⊨_fin {}?  {}",
        fam.target_fd,
        engine.implies(&fam.target_fd)
    );

    // Unrestricted implication fails: exhibit the infinite witnesses.
    let fig41 = fam.figure_4_1();
    println!("\nFigure 4.1 (infinite): r = {{(i+1, i) : i ≥ 0}}");
    for d in &fam.sigma {
        println!("  satisfies {d}?  {}", fig41.satisfies(d)?);
    }
    println!(
        "  satisfies {}?  {}",
        fam.target_ind,
        fig41.satisfies(&fam.target_ind)?
    );
    if let Some(v) = fig41.check(&fam.target_ind)? {
        println!("  violation witness: {v:?}");
    }

    let fig42 = fam.figure_4_2();
    println!("\nFigure 4.2 (infinite): r = {{(1,1)}} ∪ {{(i+1, i) : i ≥ 1}}");
    println!(
        "  satisfies {}?  {}",
        fam.target_fd,
        fig42.satisfies(&fam.target_fd)?
    );
    if let Some(v) = fig42.check(&fam.target_fd)? {
        println!("  violation witness: {v:?}");
    }

    // Every finite slice of Figure 4.1 breaks Σ — that is WHY the finite
    // counting rule is sound.
    println!("\nfinite prefixes of Figure 4.1 cannot satisfy Σ:");
    for n in [2u64, 4, 8] {
        let prefix = fig41.prefix(n);
        let sat = fam
            .sigma
            .iter()
            .all(|d| prefix.satisfies(d).unwrap_or(false));
        println!("  prefix i ≤ {n}: satisfies Σ? {sat}");
    }

    // Materialize a prefix and show the offending edge.
    let prefix = fig41.prefix(3);
    let ind: Dependency = "R[A] <= R[B]".parse()?;
    if let Some(v) = prefix.check(&ind)? {
        println!("  e.g. in prefix i ≤ 3: {v}");
    }
    Ok(())
}
