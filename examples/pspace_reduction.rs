//! Theorem 3.3 live: linear bounded automaton acceptance as IND
//! implication.
//!
//! Builds the parity machine (accepts bit-strings with an even number of
//! 1s), reduces acceptance on concrete inputs to IND implication, and
//! decides it both ways: directly (BFS over configurations) and through
//! the IND solver on the reduced instance. The expression walk of
//! Corollary 3.2 *is* the accepting run.
//!
//! Run with: `cargo run --example pspace_reduction`

use depkit_lba::{reduce, zoo};
use depkit_solver::ind::IndSolver;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = zoo::parity();
    println!(
        "machine: {} glyphs, {} rewriting rules (parity of 1-bits)",
        machine.glyph_count(),
        machine.rules().len()
    );

    // Inputs over {0, 1}: glyph ids 1 = '0', 2 = '1'.
    let inputs: Vec<(&str, Vec<usize>)> = vec![
        ("00", vec![1, 1]),
        ("11", vec![2, 2]),
        ("10", vec![2, 1]),
        ("1011", vec![2, 1, 2, 2]),
        ("11011", vec![2, 2, 1, 2, 2]),
    ];

    println!(
        "\n{:<8} {:>8} {:>8} {:>10} {:>12} {:>10}",
        "input", "direct", "via-IND", "|Σ| INDs", "IND arity", "steps"
    );
    for (name, input) in inputs {
        let direct = machine.accepts(&input, 5_000_000).expect("in budget");
        let red = reduce(&machine, &input)?;
        let solver = IndSolver::new(&red.sigma);
        let (via_ind, stats) = solver.implies_with_stats(&red.target);
        assert_eq!(direct, via_ind, "reduction must agree with the machine");
        println!(
            "{:<8} {:>8} {:>8} {:>10} {:>12} {:>10}",
            name,
            direct,
            via_ind,
            red.sigma.len(),
            red.sigma.first().map(|i| i.arity()).unwrap_or(0),
            stats.expressions_visited,
        );
    }

    // Show an accepting run extracted from the IND walk.
    let input = vec![2, 2]; // "11"
    let red = reduce(&machine, &input)?;
    let solver = IndSolver::new(&red.sigma);
    if let Some(walk) = solver.walk(&red.target) {
        println!("\naccepting run for \"11\" as a Corollary 3.2 expression walk:");
        for step in &walk {
            // Each expression is a configuration: attribute names are
            // glyph_position pairs.
            let config: Vec<&str> = step.expr.attrs.attrs().iter().map(|a| a.name()).collect();
            println!("  {}", config.join(" "));
        }
    }
    Ok(())
}
