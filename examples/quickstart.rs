//! Quickstart: declare a schema, state dependencies, check databases, and
//! ask implication questions.
//!
//! Run with: `cargo run --example quickstart`

use depkit_core::prelude::*;
use depkit_solver::fd::FdEngine;
use depkit_solver::ind::IndSolver;
use depkit_solver::interact::Saturator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's opening example: every MANAGER entry of MGR appears as an
    // EMPLOYEE entry of EMP.
    let schema = DatabaseSchema::parse(&["EMP(NAME, DEPT)", "MGR(NAME, DEPT)"])?;
    println!("schema: {schema}");

    // Dependencies in the text syntax: an IND and an FD.
    let manager_is_employee: Dependency = "MGR[NAME, DEPT] <= EMP[NAME, DEPT]".parse()?;
    let one_dept_per_name: Dependency = "EMP: NAME -> DEPT".parse()?;
    println!("Σ = {{ {manager_is_employee} ; {one_dept_per_name} }}");

    // Build a database and check it.
    let mut db = Database::empty(schema);
    db.insert_str(
        "EMP",
        &[
            &["hilbert", "math"],
            &["noether", "math"],
            &["bohr", "physics"],
        ],
    )?;
    db.insert_str("MGR", &[&["hilbert", "math"]])?;
    assert!(db.satisfies(&manager_is_employee)?);
    assert!(db.satisfies(&one_dept_per_name)?);
    println!("database satisfies Σ ✓");

    // Violations come with witnesses.
    db.insert_str("MGR", &[&["gauss", "math"]])?;
    if let Some(violation) = db.check(&manager_is_employee)? {
        println!("after inserting a non-employee manager: {violation}");
    }

    // Implication: IND reasoning (complete per Theorem 3.1)...
    let sigma = ["MGR[NAME, DEPT] <= EMP[NAME, DEPT]".parse::<Dependency>()?];
    let ind_solver = IndSolver::new(
        &sigma
            .iter()
            .filter_map(|d| d.as_ind().cloned())
            .collect::<Vec<_>>(),
    );
    let projected: Dependency = "MGR[NAME] <= EMP[NAME]".parse()?;
    println!(
        "Σ ⊨ {projected}?  {}",
        ind_solver.implies(projected.as_ind().unwrap())
    );

    // ... FD reasoning (Armstrong-complete) ...
    let fds = vec![match "EMP: NAME -> DEPT".parse::<Dependency>()? {
        Dependency::Fd(f) => f,
        _ => unreachable!(),
    }];
    let fd_engine = FdEngine::new("EMP", &fds);
    println!(
        "closure of {{NAME}} in EMP: {:?}",
        fd_engine.closure(&depkit_core::attr::attrs(&["NAME"]))
    );

    // ... and their interaction (Proposition 4.1): managers inherit the FD.
    let deps: Vec<Dependency> = vec![
        "MGR[NAME, DEPT] <= EMP[NAME, DEPT]".parse()?,
        "EMP: NAME -> DEPT".parse()?,
    ];
    let mut sat = Saturator::new(&deps);
    sat.saturate();
    let inherited: Dependency = "MGR: NAME -> DEPT".parse()?;
    println!(
        "Σ ⊨ {inherited}?  {} (Proposition 4.1)",
        sat.implies(&inherited)
    );
    Ok(())
}
