//! Referential integrity for a small HR schema: INDs as foreign keys, FDs
//! as keys, violation reporting, and automatic repair via the chase.
//!
//! The paper's motivation for INDs is exactly this: "they permit us to
//! selectively define what data must be duplicated in what relations."
//!
//! Run with: `cargo run --example referential_integrity`

use depkit_chase::fdind_chase::{ChaseBudget, ChaseOutcome, FdIndChase};
use depkit_core::prelude::*;
use depkit_solver::fd::FdEngine;
use depkit_solver::interact::Saturator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = DatabaseSchema::parse(&[
        "EMP(NAME, DEPT, OFFICE)",
        "DEPT(DNAME, HEAD)",
        "MGR(NAME, DEPT)",
    ])?;

    // Integrity constraints:
    let constraints: Vec<Dependency> = vec![
        // managers are employees of the department they manage (typed IND)
        "MGR[NAME, DEPT] <= EMP[NAME, DEPT]".parse()?,
        // every employee's department exists
        "EMP[DEPT] <= DEPT[DNAME]".parse()?,
        // every department head is its manager
        "DEPT[HEAD, DNAME] <= MGR[NAME, DEPT]".parse()?,
        // keys
        "EMP: NAME -> DEPT, OFFICE".parse()?,
        "DEPT: DNAME -> HEAD".parse()?,
        "MGR: DEPT -> NAME".parse()?,
    ];

    let mut db = Database::empty(schema.clone());
    db.insert_str(
        "EMP",
        &[
            &["hilbert", "math", "g01"],
            &["noether", "math", "g02"],
            &["bohr", "physics", "p11"],
        ],
    )?;
    db.insert_str("DEPT", &[&["math", "hilbert"], &["physics", "bohr"]])?;
    db.insert_str("MGR", &[&["hilbert", "math"], &["bohr", "physics"]])?;

    println!("== integrity check ==");
    let mut ok = true;
    for c in &constraints {
        match db.check(c)? {
            None => println!("  ✓ {c}"),
            Some(v) => {
                ok = false;
                println!("  ✗ {v}");
            }
        }
    }
    assert!(ok);

    // A bad update: a new department row pointing at a non-manager head.
    db.insert_str("DEPT", &[&["chemistry", "curie"]])?;
    println!("\n== after inserting DEPT(chemistry, curie) ==");
    for c in &constraints {
        if let Some(v) = db.check(c)? {
            println!("  ✗ {v}");
        }
    }

    // What do the constraints *imply*? The interaction rules derive that
    // department heads determine their department office... Proposition 4.1
    // pulls EMP's key back through the MGR-to-EMP inclusion:
    let mut sat = Saturator::new(&constraints);
    sat.saturate();
    for q in ["MGR: NAME -> DEPT", "DEPT[HEAD] <= EMP[NAME]"] {
        let q: Dependency = q.parse()?;
        println!("implied: {q}?  {}", sat.implies(&q));
    }

    // Repair by chase: ask whether the constraints FORCE the existence of
    // missing tuples, then let the goal-directed chase materialize the
    // countermodel completion. Here we check that a fresh department head
    // must be an employee (composition of two INDs through MGR).
    let chase = FdIndChase::new(&schema, &constraints)?;
    let derived: Dependency = "DEPT[HEAD] <= EMP[NAME]".parse()?;
    match chase.implies(&derived, ChaseBudget::default())? {
        ChaseOutcome::Proved { rounds } => {
            println!("\nchase proves {derived} in {rounds} rounds: the insert must cascade")
        }
        other => println!("\nchase outcome for {derived}: {other:?}"),
    }

    // Candidate keys of EMP under its FDs.
    let fds: Vec<_> = constraints
        .iter()
        .filter_map(|d| d.as_fd().cloned())
        .collect();
    let engine = FdEngine::new("EMP", &fds);
    let emp_scheme = schema.require(&RelName::new("EMP"))?;
    println!(
        "\ncandidate keys of EMP: {:?}",
        engine.candidate_keys(emp_scheme)
    );
    Ok(())
}
