//! Schema design end to end: keys, normal forms, decomposition — and the
//! INDs a decomposition creates.
//!
//! The paper's introduction places INDs at the heart of database design
//! (structural model, ER-to-relational mapping): whenever a relation is
//! split, typed INDs record how fragments embed into the original. This
//! example designs a small university schema, synthesizes 3NF, decomposes
//! to BCNF, exhibits the induced INDs, and prints an Armstrong relation
//! that *shows* exactly which FDs the design carries.
//!
//! Run with: `cargo run --example schema_design`

use depkit_core::attr::attrs;
use depkit_core::prelude::*;
use depkit_solver::armstrong::armstrong_relation;
use depkit_solver::design::{bcnf_decompose, is_bcnf, threenf_synthesis};
use depkit_solver::fd::{minimal_cover, FdEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A universal "teaching" relation and its business rules.
    let scheme =
        RelationScheme::from_names("TEACH", &["COURSE", "LECTURER", "ROOM", "SLOT", "DEPT"])?;
    let fds: Vec<Fd> = [
        "TEACH: COURSE -> LECTURER",   // one lecturer per course
        "TEACH: LECTURER -> DEPT",     // lecturers belong to a department
        "TEACH: ROOM, SLOT -> COURSE", // a room/slot hosts one course
        "TEACH: COURSE, SLOT -> ROOM", // a course sits in one room per slot
    ]
    .iter()
    .map(|s| match s.parse::<Dependency>().unwrap() {
        Dependency::Fd(f) => f,
        _ => unreachable!(),
    })
    .collect();

    let engine = FdEngine::new("TEACH", &fds);
    println!("rules:");
    for f in &fds {
        println!("  {f}");
    }

    println!("\nminimal cover:");
    for f in minimal_cover(&fds) {
        println!("  {f}");
    }

    println!("\ncandidate keys: {:?}", engine.candidate_keys(&scheme));
    println!("BCNF already? {}", is_bcnf(&engine, &scheme));

    // 3NF synthesis: dependency-preserving, lossless.
    println!("\n3NF synthesis:");
    for frag in threenf_synthesis(&fds, &scheme) {
        println!("  {}   (embeds: {})", frag.scheme, frag.embedding);
        for f in &frag.fds {
            println!("      carries {f}");
        }
    }

    // BCNF decomposition: lossless, possibly dependency-losing.
    println!("\nBCNF decomposition:");
    for frag in bcnf_decompose(&fds, &scheme) {
        println!("  {}   (embeds: {})", frag.scheme, frag.embedding);
    }

    // An Armstrong relation makes the design tangible: it satisfies the
    // implied FDs and *only* those (a concrete "what the rules allow").
    let small_scheme = RelationScheme::from_names("CL", &["COURSE", "LECTURER", "DEPT"])?;
    let small_fds: Vec<Fd> = vec![
        Fd::new("CL", attrs(&["COURSE"]), attrs(&["LECTURER"])),
        Fd::new("CL", attrs(&["LECTURER"]), attrs(&["DEPT"])),
    ];
    let small_engine = FdEngine::new("CL", &small_fds);
    let witness = armstrong_relation(&small_engine, &small_scheme);
    println!("\nArmstrong relation for {{COURSE -> LECTURER, LECTURER -> DEPT}}:");
    print!("{witness}");
    println!(
        "e.g. LECTURER -> COURSE holds? {}  (correctly refutable from the data)",
        depkit_core::satisfy::check_fd(
            &witness,
            &Fd::new("CL", attrs(&["LECTURER"]), attrs(&["COURSE"]))
        )?
        .is_none()
    );
    Ok(())
}
