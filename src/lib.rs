//! # depkit — facade crate for the dependency toolkit workspace
//!
//! Re-exports every member crate of the reproduction of Casanova, Fagin &
//! Papadimitriou, *Inclusion Dependencies and Their Interaction with
//! Functional Dependencies* (PODS 1982 / JCSS 28(1), 1984), and owns the
//! workspace-level integration tests (`tests/`) and runnable examples
//! (`examples/`).
//!
//! | Module    | Crate           | Paper sections |
//! |-----------|-----------------|----------------|
//! | [`core`]  | `depkit-core`   | §2 model, dependencies, satisfaction |
//! | [`solver`]| `depkit-solver` | §3 IND worklist, §4 interaction, FD closure |
//! | [`chase`] | `depkit-chase`  | §3 Rule (*), FD chase, FD+IND chase, §8 acyclic |
//! | [`axiom`] | `depkit-axiom`  | §3 proofs, §5–§7 (non-)axiomatizability |
//! | [`lba`]   | `depkit-lba`    | §3 Theorem 3.3 PSPACE reduction |
//! | [`perm`]  | `depkit-perm`   | §3 Landau lower bound |
//! | [`bench`][mod@bench] | `depkit-bench`  | shared workloads for the bench suite |
//! | [`serve`] | `depkit-serve`  | §1 motivation: constraints monitored live over TCP sessions |
//!
//! ```
//! use depkit::prelude::*;
//!
//! let schema = DatabaseSchema::parse(&["EMP(NAME, DEPT)", "MGR(NAME, DEPT)"]).unwrap();
//! let ind: Dependency = "MGR[NAME, DEPT] <= EMP[NAME, DEPT]".parse().unwrap();
//! assert!(ind.is_well_formed(&schema).is_ok());
//! ```

pub use depkit_axiom as axiom;
pub use depkit_bench as bench;
pub use depkit_chase as chase;
pub use depkit_core as core;
pub use depkit_lba as lba;
pub use depkit_perm as perm;
pub use depkit_serve as serve;
pub use depkit_solver as solver;

/// The core prelude, re-exported at the facade level.
pub mod prelude {
    pub use depkit_core::prelude::*;
}
