//! Differential suite for the columnar storage engine: the
//! `ColumnStore`-backed discovery path must be indistinguishable from the
//! row-based reference path, and from itself at any thread count.
//!
//! Four contracts, all property-checked on the planted-Σ generators of
//! `core::generate` (random databases repaired until a random mixed Σ
//! holds — the same instances the discovery round-trip tests mine):
//!
//! 1. **Representation equivalence.** `ColumnStore` and `CompiledRows`
//!    compile a database onto the *same* dense id space (row-major
//!    interning, schema order), cell for cell.
//! 2. **Engine equivalence.** `discover_with_config` (columnar, parallel)
//!    and `discover_reference` (row-at-a-time, sequential) produce
//!    identical raw sets, covers, and instrumentation.
//! 3. **Thread determinism.** `threads = 1` and `threads = N` produce
//!    identical covers in identical (stable) order — the parallel stages
//!    merge worker output in deterministic input order, so the thread
//!    knob can never change a mined result.
//! 4. **Budget determinism.** A memory budget small enough to force every
//!    out-of-core mechanism — spilled sorted runs, hash-of-key validation
//!    passes, FD lattice waves — reproduces the unbounded in-memory result
//!    (and hence the reference result) byte for byte; the budget moves
//!    intermediate state to disk, never changes what is mined.

use depkit_core::column::ColumnStore;
use depkit_core::generate::{
    random_database, random_mixed_set, random_satisfying_database, random_schema, Rng, SchemaConfig,
};
use depkit_core::index::CompiledRows;
use depkit_solver::discover::{
    discover_reference, discover_with_config, try_discover_with_config, DiscoveryConfig,
};
use proptest::prelude::*;

/// A planted-Σ instance: random schema, random mixed Σ, database repaired
/// to satisfy it.
fn planted_instance(seed: u64) -> depkit_core::Database {
    let mut rng = Rng::new(seed);
    // Arity 2 keeps accidental IND cliques small, so cover minimization
    // (run once per engine per case) stays cheap; the representation
    // contract below exercises wider schemas separately.
    let schema = random_schema(
        &mut rng,
        &SchemaConfig {
            relations: 2,
            min_arity: 2,
            max_arity: 2,
        },
    );
    let planted = random_mixed_set(&mut rng, &schema, 2, 2);
    random_satisfying_database(&mut rng, &schema, &planted, 6, 3)
}

proptest! {
    /// Contract 1: the columnar and row-major compilations assign the same
    /// id to the same cell — interchangeable views of one id space.
    #[test]
    fn column_store_matches_compiled_rows(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 3, min_arity: 1, max_arity: 4,
        });
        let db = random_database(&mut rng, &schema, 10, 4);
        let store = ColumnStore::new(&db);
        let rows = CompiledRows::new(&db);
        prop_assert_eq!(store.relation_count(), rows.relation_count());
        prop_assert_eq!(store.distinct_values(), rows.distinct_values());
        prop_assert_eq!(store.total_rows(), rows.total_rows());
        for rel in 0..store.relation_count() {
            let cols = store.relation(rel);
            prop_assert_eq!(cols.row_count(), rows.rows(rel).len());
            for (r, row) in rows.rows(rel).iter().enumerate() {
                for (c, &id) in row.iter().enumerate() {
                    prop_assert_eq!(cols.column(c)[r], id, "cell ({rel}, {r}, {c})");
                }
            }
            // Both views resolve ids back to the same values.
            for c in 0..cols.arity() {
                for &id in cols.sorted_distinct(c).iter() {
                    prop_assert_eq!(
                        store.interner().resolve(id),
                        rows.interner().resolve(id)
                    );
                }
            }
        }
    }

    /// Contract 2: columnar discovery == row-based reference discovery on
    /// planted-Σ databases — raw set, cover, and stats.
    #[test]
    fn columnar_discovery_equals_row_discovery(seed in any::<u64>()) {
        let db = planted_instance(seed);
        let config = DiscoveryConfig::default();
        let columnar = discover_with_config(&db, &config);
        let reference = discover_reference(&db, &config);
        prop_assert_eq!(&columnar.raw, &reference.raw);
        prop_assert_eq!(&columnar.cover, &reference.cover);
        prop_assert_eq!(columnar.stats, reference.stats);
    }

    /// Contract 3: the thread knob never changes the mined result — covers
    /// (and raw sets, and stats) are identical and identically ordered.
    #[test]
    fn thread_count_is_observationally_irrelevant(seed in any::<u64>()) {
        let db = planted_instance(seed);
        let single = discover_with_config(&db, &DiscoveryConfig {
            threads: 1,
            ..DiscoveryConfig::default()
        });
        for threads in [2, 5] {
            let multi = discover_with_config(&db, &DiscoveryConfig {
                threads,
                ..DiscoveryConfig::default()
            });
            prop_assert_eq!(&single.raw, &multi.raw, "raw at threads={}", threads);
            prop_assert_eq!(&single.cover, &multi.cover, "cover at threads={}", threads);
            prop_assert_eq!(single.stats, multi.stats, "stats at threads={}", threads);
        }
    }

    /// Contract 4: forced-spill discovery == in-memory discovery == the
    /// row-based reference, on planted-Σ databases. A 1-byte budget puts
    /// every column over its spill share and every validation stage into
    /// its sharded mode, so this drives the whole external pipeline.
    #[test]
    fn forced_spill_discovery_equals_in_memory_and_reference(seed in any::<u64>()) {
        let db = planted_instance(seed);
        let in_memory = discover_with_config(&db, &DiscoveryConfig::default());
        let reference = discover_reference(&db, &DiscoveryConfig::default());
        let spilled = try_discover_with_config(&db, &DiscoveryConfig {
            memory_budget: 1,
            ..DiscoveryConfig::default()
        }).expect("spill I/O");
        if db.total_tuples() > 0 {
            prop_assert!(spilled.spill.spilled(), "1-byte budget must hit the disk path");
        }
        prop_assert_eq!(&spilled.raw, &in_memory.raw);
        prop_assert_eq!(&spilled.cover, &in_memory.cover);
        prop_assert_eq!(spilled.stats, in_memory.stats);
        prop_assert_eq!(&spilled.raw, &reference.raw);
        prop_assert_eq!(&spilled.cover, &reference.cover);
        prop_assert_eq!(spilled.stats, reference.stats);
    }
}

/// Acceptance: a dataset at least 10× the configured memory budget must
/// complete discovery and produce output byte-identical to the in-memory
/// path. 4096 employee rows hold 32 KiB of EMP column data against a
/// 3 KiB budget (~10.7×).
#[test]
fn dataset_ten_times_the_budget_discovers_identically() {
    let schema = depkit_core::DatabaseSchema::parse(&["EMP(EID, DNO)", "DEPT(DNO, MGR)"]).unwrap();
    let mut db = depkit_core::Database::empty(schema);
    for d in 0..32i64 {
        db.insert_ints("DEPT", &[&[d, 100 + d]]).unwrap();
    }
    for e in 0..4096i64 {
        db.insert_ints("EMP", &[&[e, e % 32]]).unwrap();
    }
    let budget = 3 << 10;
    let unbounded = discover_with_config(&db, &DiscoveryConfig::default());
    let budgeted = try_discover_with_config(
        &db,
        &DiscoveryConfig {
            memory_budget: budget,
            ..DiscoveryConfig::default()
        },
    )
    .expect("spill I/O");
    assert!(budgeted.spill.spilled());
    assert_eq!(budgeted.raw, unbounded.raw);
    assert_eq!(budgeted.cover, unbounded.cover);
    assert_eq!(budgeted.stats, unbounded.stats);
}

/// The acceptance workload shape (keys + referential IND), deterministic:
/// the columnar engine must mine exactly what the reference engine mines,
/// and `threads = 4` must reproduce `threads = 1` byte for byte.
#[test]
fn referential_workload_is_identical_across_engines_and_threads() {
    let schema = depkit_core::DatabaseSchema::parse(&["EMP(EID, DNO)", "DEPT(DNO, MGR)"]).unwrap();
    let mut db = depkit_core::Database::empty(schema);
    for d in 0..16i64 {
        db.insert_ints("DEPT", &[&[d, 100 + d]]).unwrap();
    }
    for e in 0..512i64 {
        db.insert_ints("EMP", &[&[e, e % 16]]).unwrap();
    }
    let config = DiscoveryConfig::default();
    let columnar = discover_with_config(&db, &config);
    let reference = discover_reference(&db, &config);
    assert_eq!(columnar.raw, reference.raw);
    assert_eq!(columnar.cover, reference.cover);
    assert_eq!(columnar.stats, reference.stats);
    // The three planted dependencies are all mined.
    for dep in [
        "EMP[DNO] <= DEPT[DNO]",
        "EMP: EID -> DNO",
        "DEPT: DNO -> MGR",
    ] {
        let dep: depkit_core::Dependency = dep.parse().unwrap();
        assert!(
            depkit_solver::discover::implied_by(&columnar.cover, &dep),
            "cover must imply {dep}"
        );
    }
    let multi = discover_with_config(
        &db,
        &DiscoveryConfig {
            threads: 4,
            ..DiscoveryConfig::default()
        },
    );
    assert_eq!(columnar.raw, multi.raw);
    assert_eq!(columnar.cover, multi.cover);
    assert_eq!(columnar.stats, multi.stats);
}
