//! Differential property tests: the compiled (interned-id) engines must
//! agree with the pre-refactor string-based reference implementations on
//! every entry point the refactor touched — `closure`, `implies` (FD and
//! IND, including the automatic typed dispatch), and walk production —
//! plus the Landau `σ(γ)` family from `depkit-perm`, whose superpolynomial
//! walks are the paper's own stress test for the search.

use depkit::core::attr::AttrSeq;
use depkit::core::generate::{
    random_fd, random_ind, random_ind_set, random_schema, Rng, SchemaConfig,
};
use depkit::core::{DatabaseSchema, Fd, Ind};
use depkit::perm::ind_family::{landau_pair, permutation_ind, transposition_generators};
use depkit::perm::perm::Perm;
use depkit::solver::fd::FdEngine;
use depkit::solver::ind::{verify_walk, IndSolver};
use depkit::solver::reference::{ReferenceFdEngine, ReferenceIndSolver};
use proptest::prelude::*;

/// A random set of *typed* INDs over `schema` (both sides carry the same
/// attribute sequence), so the compiled solver's automatic typed dispatch
/// fires.
fn random_typed_ind_set(rng: &mut Rng, schema: &DatabaseSchema, count: usize) -> Vec<Ind> {
    let mut out = Vec::new();
    let mut guard = 0;
    while out.len() < count && guard < count * 20 {
        guard += 1;
        let schemes = schema.schemes();
        let lhs = &schemes[rng.below(schemes.len())];
        let rhs = &schemes[rng.below(schemes.len())];
        // Attributes present in both schemes (generated names are shared).
        let common: Vec<_> = lhs
            .attrs()
            .attrs()
            .iter()
            .filter(|a| rhs.attrs().contains_attr(a))
            .cloned()
            .collect();
        if common.is_empty() {
            continue;
        }
        let k = 1 + rng.below(common.len());
        let pos = rng.distinct_indices(common.len(), k);
        let attrs =
            AttrSeq::new(pos.iter().map(|&p| common[p].clone()).collect()).expect("distinct");
        out.push(
            Ind::new(lhs.name().clone(), attrs.clone(), rhs.name().clone(), attrs)
                .expect("equal arity"),
        );
    }
    out
}

proptest! {
    /// Entry point 1 — `FdEngine::closure` equals the reference closure on
    /// random FD sets (the full set, not just a membership query).
    #[test]
    fn fd_closure_agrees_with_reference(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 1, min_arity: 3, max_arity: 6,
        });
        let scheme = schema.schemes()[0].clone();
        let mut fds: Vec<Fd> = Vec::new();
        for _ in 0..6 {
            let lhs = 1 + rng.below(2);
            let rhs = 1 + rng.below(2);
            if let Some(f) = random_fd(&mut rng, &schema, lhs, rhs) {
                fds.push(f);
            }
        }
        let compiled = FdEngine::new(scheme.name().clone(), &fds);
        let reference = ReferenceFdEngine::new(scheme.name().clone(), &fds);
        for _ in 0..8 {
            let k = 1 + rng.below(scheme.arity());
            let pos = rng.distinct_indices(scheme.arity(), k);
            let start = scheme.attrs().select(&pos).expect("distinct positions");
            prop_assert_eq!(compiled.closure(&start), reference.closure(&start));
        }
        // Closures from attributes the FDs never mention must also agree.
        let alien = depkit::core::attr::attrs(&["Z_UNSEEN"]);
        prop_assert_eq!(compiled.closure(&alien), reference.closure(&alien));
    }

    /// Entry point 2 — `FdEngine::implies` equals the reference on random
    /// FD targets.
    #[test]
    fn fd_implies_agrees_with_reference(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 1, min_arity: 3, max_arity: 5,
        });
        let mut fds: Vec<Fd> = Vec::new();
        for _ in 0..5 {
            if let Some(f) = random_fd(&mut rng, &schema, 1, 1) {
                fds.push(f);
            }
        }
        for _ in 0..10 {
            let lhs = 1 + rng.below(2);
            if let Some(target) = random_fd(&mut rng, &schema, lhs, 1) {
                let compiled = FdEngine::new(target.rel.clone(), &fds);
                let reference = ReferenceFdEngine::new(target.rel.clone(), &fds);
                prop_assert_eq!(
                    compiled.implies(&target),
                    reference.implies(&target),
                    "target {}", target
                );
            }
        }
    }

    /// Entry point 3 — `IndSolver::implies` equals the reference search on
    /// random (untyped) IND sets, and every produced walk verifies against
    /// the solver's Σ.
    #[test]
    fn ind_implies_and_walks_agree_with_reference(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 3, min_arity: 2, max_arity: 3,
        });
        let mut sigma = random_ind_set(&mut rng, &schema, 5, 2);
        // Exercise the Σ dedupe: duplicate one member and add a trivial one.
        if let Some(first) = sigma.first().cloned() {
            sigma.push(first);
        }
        if let Some(s) = schema.schemes().first() {
            sigma.push(
                Ind::new(s.name().clone(), s.attrs().clone(), s.name().clone(), s.attrs().clone())
                    .expect("equal arity"),
            );
        }
        let compiled = IndSolver::new(&sigma);
        let reference = ReferenceIndSolver::new(&sigma);
        for _ in 0..6 {
            let arity = 1 + rng.below(2);
            let Some(target) = random_ind(&mut rng, &schema, arity) else { continue };
            let got = compiled.implies(&target);
            prop_assert_eq!(got, reference.implies(&target), "target {}", target);
            if got {
                let walk = compiled.walk(&target).expect("implied ⇒ walk");
                prop_assert!(
                    verify_walk(compiled.sigma(), &target, &walk),
                    "compiled walk fails verification for {}", target
                );
                let ref_walk = reference.walk(&target).expect("implied ⇒ walk");
                // BFS from identical frontiers: identical walk lengths.
                prop_assert_eq!(walk.len(), ref_walk.len());
            }
        }
    }

    /// The automatic typed dispatch agrees with the reference general
    /// search — answers, stats, and verifiable walks — on all-typed Σ.
    #[test]
    fn typed_dispatch_agrees_with_reference(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 4, min_arity: 2, max_arity: 4,
        });
        let sigma = random_typed_ind_set(&mut rng, &schema, 5);
        let compiled = IndSolver::new(&sigma);
        let reference = ReferenceIndSolver::new(&sigma);
        for _ in 0..6 {
            let Some(mut target) = random_ind(&mut rng, &schema, 1) else { continue };
            // Make the target typed: reuse the left side on the right.
            let lhs_attrs = target.lhs_attrs.clone();
            if schema.require(&target.rhs_rel).unwrap().attrs().attrs().iter()
                .filter(|a| lhs_attrs.contains_attr(a)).count() != lhs_attrs.len() {
                continue; // left attrs not all present in the right relation
            }
            target = Ind::new(
                target.lhs_rel.clone(), lhs_attrs.clone(),
                target.rhs_rel.clone(), lhs_attrs,
            ).expect("equal arity");
            prop_assert_eq!(compiled.implies_typed(&target).is_some(), true);
            let (got, stats) = compiled.implies_with_stats(&target);
            let (want, ref_stats) = reference.implies_with_stats(&target);
            prop_assert_eq!(got, want, "target {}", target);
            // Same answer and minimal walk, while Σ dedupe and the
            // unknown-symbol early exit may only ever SHRINK the search.
            prop_assert_eq!(stats.walk_length, ref_stats.walk_length, "walk for {}", target);
            prop_assert!(
                stats.expressions_visited <= ref_stats.expressions_visited
                    && stats.applications_attempted <= ref_stats.applications_attempted,
                "compiled search did more work than the reference on {}", target
            );
            if got {
                let walk = compiled.walk(&target).expect("implied ⇒ walk");
                prop_assert!(verify_walk(compiled.sigma(), &target, &walk));
            }
        }
    }

    /// The Landau σ(γ) family: compiled and reference agree on σ(γ) ⊨ σ(γᵏ)
    /// for random permutations, with identical minimal walk lengths.
    #[test]
    fn permutation_family_agrees_with_reference(seed in any::<u64>(), m in 3usize..7, k in 1u32..9) {
        let mut rng = Rng::new(seed);
        // A random permutation of {0..m} via Fisher–Yates indices.
        let images = rng.distinct_indices(m, m);
        let gamma = Perm::new(images).expect("permutation");
        let sigma = permutation_ind(&gamma);
        let target = permutation_ind(&gamma.pow(k as u128));
        let compiled = IndSolver::new(std::slice::from_ref(&sigma));
        let reference = ReferenceIndSolver::new(std::slice::from_ref(&sigma));
        let (got, stats) = compiled.implies_with_stats(&target);
        let (want, ref_stats) = reference.implies_with_stats(&target);
        prop_assert_eq!(got, want, "σ(γ^{}) for γ = {:?}", k, gamma);
        prop_assert_eq!(stats.walk_length, ref_stats.walk_length);
        if got {
            let walk = compiled.walk(&target).expect("implied ⇒ walk");
            prop_assert!(verify_walk(compiled.sigma(), &target, &walk));
        }
    }
}

/// The two deterministic σ(γ) constructions of Section 3, checked
/// compiled-vs-reference exactly.
#[test]
fn landau_and_transposition_families_agree_with_reference() {
    for m in [3usize, 5, 7] {
        let (sigma, target, f) = landau_pair(m);
        let compiled = IndSolver::new(std::slice::from_ref(&sigma));
        let reference = ReferenceIndSolver::new(std::slice::from_ref(&sigma));
        let (got, stats) = compiled.implies_with_stats(&target);
        let (want, ref_stats) = reference.implies_with_stats(&target);
        assert!(got && want, "σ(γ) must imply σ(δ) at m={m}");
        assert_eq!(stats.walk_length, Some(f as usize), "m={m}");
        assert_eq!(stats.walk_length, ref_stats.walk_length, "m={m}");
    }
    // Transposition generators imply every permutation IND; spot-check a
    // few targets through both solvers.
    let m = 4;
    let gens = transposition_generators(m);
    let compiled = IndSolver::new(&gens);
    let reference = ReferenceIndSolver::new(&gens);
    for images in [vec![1, 2, 3, 0], vec![3, 2, 1, 0], vec![2, 0, 3, 1]] {
        let target = permutation_ind(&Perm::new(images).unwrap());
        assert!(compiled.implies(&target));
        assert!(reference.implies(&target));
        let walk = compiled.walk(&target).expect("implied ⇒ walk");
        assert!(verify_walk(compiled.sigma(), &target, &walk));
    }
}
