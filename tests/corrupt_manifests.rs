//! The corrupted-manifest corpus: every damaged artifact under
//! `tests/data/corrupt/` must be rejected by manifest loading or run
//! verification with a diagnostic `io::Error` *naming the offending
//! file* — never a panic, and never a partially loaded run set that
//! could flow into a partial cover downstream.

use depkit_core::spill::{load_verified_run_set, RunSet};
use std::path::{Path, PathBuf};

fn corrupt_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/corrupt")
}

/// Load a corpus manifest and assert the diagnostic names `culprit`.
fn assert_rejected(manifest: &str, culprit: &str, expect: &str) {
    let path = corrupt_dir().join(manifest);
    let err = load_verified_run_set(&path)
        .expect_err("damaged artifact must not load")
        .to_string();
    assert!(
        err.contains(culprit),
        "`{manifest}` diagnostic must name `{culprit}`, got: {err}"
    );
    assert!(
        err.contains(expect),
        "`{manifest}` diagnostic must explain the failure (`{expect}`), got: {err}"
    );
}

#[test]
fn truncated_manifest_is_rejected_naming_the_manifest() {
    // The run line lost its name field — the shape of a torn write that
    // `publish_manifest`'s rename protocol exists to prevent.
    assert_rejected(
        "truncated.manifest",
        "truncated.manifest",
        "bad run manifest line",
    );
}

#[test]
fn wrong_version_manifest_is_rejected_naming_the_manifest() {
    // A pre-checksum v1 manifest carries no integrity data, so it is an
    // error, not a fallback.
    assert_rejected(
        "wrong-version.manifest",
        "wrong-version.manifest",
        "expected depkit-runs v2",
    );
}

#[test]
fn checksum_mismatch_is_rejected_naming_the_run_file() {
    // The manifest parses fine; verification must still catch the run
    // whose bytes hash differently than recorded.
    assert_rejected(
        "checksum-mismatch.manifest",
        "checksum-mismatch-run0.ids",
        "checksum mismatch",
    );
}

#[test]
fn missing_run_file_is_rejected_naming_the_run_file() {
    assert_rejected(
        "missing-run.manifest",
        "missing-run0.ids",
        "missing run file",
    );
}

#[test]
fn truncated_run_file_is_rejected_naming_the_run_file() {
    assert_rejected(
        "truncated-run.manifest",
        "truncated-run0.ids",
        "manifest says 4 ids (16 bytes), file has 12 bytes",
    );
}

#[test]
fn nonexistent_manifest_is_rejected_naming_the_manifest() {
    assert_rejected(
        "no-such.manifest",
        "no-such.manifest",
        "cannot read run manifest",
    );
}

#[test]
fn parse_failures_happen_before_any_run_is_exposed() {
    // `read_manifest` alone (no verification) must also reject the
    // structurally damaged corpus entries outright: a caller can never
    // hold a `RunSet` describing runs the manifest didn't fully commit.
    for manifest in ["truncated.manifest", "wrong-version.manifest"] {
        assert!(RunSet::read_manifest(&corrupt_dir().join(manifest)).is_err());
    }
    // The verification-stage entries do parse — their damage is in the
    // run files — which is exactly why `load_verified_run_set` (parse +
    // verify) is the only loading path the shard coordinator uses.
    for manifest in ["checksum-mismatch.manifest", "missing-run.manifest"] {
        assert!(RunSet::read_manifest(&corrupt_dir().join(manifest)).is_ok());
        assert!(load_verified_run_set(&corrupt_dir().join(manifest)).is_err());
    }
}
