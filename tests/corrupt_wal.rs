//! The corrupt-WAL corpus: every damaged durability artifact must be
//! either *recovered around* (a torn tail — the shape an interrupted
//! append legitimately leaves — is truncated, with the dropped bytes
//! reported) or *refused with a diagnostic naming the offending file*
//! (mid-log corruption, mangled checkpoints, foreign files). Never a
//! panic, and never a silent partial load that would masquerade as a
//! smaller-but-valid history.
//!
//! The corpus is generated, not checked in: each test builds a healthy
//! data directory through the real commit path, then damages it the
//! specific way it is about.

use depkit_core::prelude::*;
use depkit_core::wal::FsyncPolicy;
use depkit_solver::incremental::{durable, Durability, DurabilityConfig};
use std::path::{Path, PathBuf};

fn spec() -> (DatabaseSchema, Vec<Dependency>) {
    let schema = DatabaseSchema::parse(&["EMP(NAME, DEPT)", "DEPT(DNO)"]).unwrap();
    let sigma = vec!["EMP[DEPT] <= DEPT[DNO]".parse().unwrap()];
    (schema, sigma)
}

fn tdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("depkit-corrupt-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn cfg(dir: &Path) -> DurabilityConfig {
    DurabilityConfig {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Never,
        checkpoint_every: 0,
    }
}

/// Build a data dir with `commits` single-insert commits (and an
/// optional checkpoint after `checkpoint_at` of them), then crash.
fn seeded_dir(tag: &str, commits: i64, checkpoint_at: Option<i64>) -> PathBuf {
    let (schema, sigma) = spec();
    let dir = tdir(tag);
    let (cat, dur, _) = Durability::open(&schema, &sigma, cfg(&dir)).unwrap();
    for i in 0..commits {
        let mut s = cat.begin();
        s.stage_insert("DEPT", Tuple::ints(&[i])).unwrap();
        s.commit_tagged(None).unwrap();
        if checkpoint_at == Some(i + 1) {
            dur.checkpoint(&cat).unwrap();
        }
    }
    dir
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join(durable::WAL_FILE)
}

fn ckpt_path(dir: &Path) -> PathBuf {
    dir.join(durable::CHECKPOINT_FILE)
}

/// Byte offset of the `n`-th frame in a WAL (frame 0 is the header).
fn frame_offset(wal: &[u8], n: usize) -> usize {
    let mut off = 8; // magic
    for _ in 0..n {
        let len = u32::from_le_bytes(wal[off..off + 4].try_into().unwrap()) as usize;
        off += 4 + len + 8;
    }
    off
}

fn open_err(dir: &Path) -> String {
    let (schema, sigma) = spec();
    Durability::open(&schema, &sigma, cfg(dir))
        .map(|_| ())
        .expect_err("a damaged artifact must refuse to load")
        .to_string()
}

#[test]
fn a_torn_tail_of_garbage_is_truncated_and_reported() {
    let dir = seeded_dir("torn-garbage", 4, None);
    let wal = wal_path(&dir);
    let mut bytes = std::fs::read(&wal).unwrap();
    // An interrupted append: garbage that cannot parse as a frame (a
    // length field of 0xFFFFFFFF overruns any file).
    bytes.extend_from_slice(&[0xFF; 10]);
    std::fs::write(&wal, &bytes).unwrap();

    let (schema, sigma) = spec();
    let (cat, _dur, rep) = Durability::open(&schema, &sigma, cfg(&dir)).unwrap();
    assert_eq!(rep.replayed_commits, 4, "every complete commit survives");
    assert_eq!(rep.wal_tail_dropped, Some(10), "the torn bytes are counted");
    assert_eq!(cat.total_rows(), 4);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_half_written_frame_is_a_torn_tail_not_an_error() {
    let dir = seeded_dir("torn-half", 3, None);
    let wal = wal_path(&dir);
    let bytes = std::fs::read(&wal).unwrap();
    // Re-crash mid-append: duplicate the last frame's first half. The
    // length prefix promises more bytes than the file holds.
    let last = frame_offset(&bytes, 3);
    let half = &bytes[last..last + (bytes.len() - last) / 2];
    let mut torn = bytes.clone();
    torn.extend_from_slice(half);
    std::fs::write(&wal, &torn).unwrap();

    let (schema, sigma) = spec();
    let (cat, _dur, rep) = Durability::open(&schema, &sigma, cfg(&dir)).unwrap();
    assert_eq!(rep.replayed_commits, 3);
    assert_eq!(rep.wal_tail_dropped, Some(half.len() as u64));
    assert_eq!(cat.total_rows(), 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_bit_flip_mid_log_is_refused_naming_file_and_offset() {
    let dir = seeded_dir("flip-mid", 4, None);
    let wal = wal_path(&dir);
    let mut bytes = std::fs::read(&wal).unwrap();
    // Flip one payload bit of the *first* commit frame; three valid
    // frames follow, so truncating here would drop acked commits.
    let first = frame_offset(&bytes, 1);
    bytes[first + 6] ^= 0x40;
    std::fs::write(&wal, &bytes).unwrap();

    let e = open_err(&dir);
    assert!(e.contains("wal.log"), "names the file: {e}");
    assert!(
        e.contains(&format!("offset {first}")),
        "names the offset: {e}"
    );
    assert!(
        e.contains("mid-log corruption"),
        "explains the refusal: {e}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_bit_flip_in_the_last_frame_truncates_as_a_torn_tail() {
    let dir = seeded_dir("flip-last", 4, None);
    let wal = wal_path(&dir);
    let mut bytes = std::fs::read(&wal).unwrap();
    // The same single-bit damage, but in the *last* frame: with no
    // valid frame after it, corruption and a torn write are
    // indistinguishable, so recovery takes the conservative truncation
    // and reports what it dropped.
    let last = frame_offset(&bytes, 4);
    bytes[last + 6] ^= 0x40;
    std::fs::write(&wal, &bytes).unwrap();
    let dropped = (bytes.len() - last) as u64;

    let (schema, sigma) = spec();
    let (cat, _dur, rep) = Durability::open(&schema, &sigma, cfg(&dir)).unwrap();
    assert_eq!(rep.replayed_commits, 3, "the damaged commit is dropped");
    assert_eq!(rep.wal_tail_dropped, Some(dropped));
    assert_eq!(cat.total_rows(), 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_wal_with_foreign_magic_is_refused_naming_the_file() {
    let dir = seeded_dir("magic", 2, None);
    let wal = wal_path(&dir);
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes[..8].copy_from_slice(b"notawal!");
    std::fs::write(&wal, &bytes).unwrap();

    let e = open_err(&dir);
    assert!(e.contains("wal.log"), "names the file: {e}");
    assert!(e.contains("bad or missing magic"), "got: {e}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_truncated_checkpoint_is_refused_naming_the_file() {
    let dir = seeded_dir("ckpt-trunc", 5, Some(5));
    let ckpt = ckpt_path(&dir);
    let bytes = std::fs::read(&ckpt).unwrap();
    // A torn checkpoint write cannot exist through the tmp+rename
    // protocol — so a short file is damage, not a crash artifact, and
    // recovery must refuse rather than silently fall back to empty.
    std::fs::write(&ckpt, &bytes[..bytes.len() - 4]).unwrap();

    let e = open_err(&dir);
    assert!(e.contains("catalog.ckpt"), "names the file: {e}");
    assert!(e.contains("truncated or oversized checkpoint"), "got: {e}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_bit_flipped_checkpoint_is_refused_by_checksum() {
    let dir = seeded_dir("ckpt-flip", 5, Some(5));
    let ckpt = ckpt_path(&dir);
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&ckpt, &bytes).unwrap();

    let e = open_err(&dir);
    assert!(e.contains("catalog.ckpt"), "names the file: {e}");
    assert!(e.contains("checksum mismatch"), "got: {e}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_wal_for_a_different_spec_is_refused() {
    let dir = seeded_dir("spec", 3, None);
    let other_schema = DatabaseSchema::parse(&["OTHER(X)"]).unwrap();
    let e = Durability::open(&other_schema, &[], cfg(&dir))
        .map(|_| ())
        .expect_err("a foreign spec must refuse to load")
        .to_string();
    assert!(e.contains("different spec"), "got: {e}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn an_empty_wal_file_is_refused_not_treated_as_fresh() {
    let dir = tdir("empty-wal");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(wal_path(&dir), b"").unwrap();
    // A zero-byte WAL means the header write itself was lost — the file
    // is damage (creation goes through tmp+rename), never a fresh start
    // that would quietly forget a history.
    let e = open_err(&dir);
    assert!(e.contains("wal.log"), "names the file: {e}");
    std::fs::remove_dir_all(&dir).unwrap();
}
