//! Regression fixtures for the discovery engine: tiny databases under
//! `tests/data/` with hand-verified expected covers, pinning discovery
//! output against accidental drift. Each fixture is a `schema`/`row` spec
//! (`<name>.dep`) paired with the expected minimal cover, one dependency
//! per line (`<name>.cover`); comparison is order-insensitive.

use depkit_core::{Database, DatabaseSchema, Dependency, RelName, Tuple, Value};
use depkit_solver::discover::{discover, implied_by};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn data_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data")
}

/// Parse the `schema`/`row` subset of the CLI spec format (`dep` lines are
/// deliberately rejected: fixtures must carry data only, so the expected
/// cover cannot leak into the input).
fn load_database(text: &str) -> Database {
    let mut schemes = Vec::new();
    let mut rows: Vec<(String, Vec<Value>)> = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (keyword, rest) = line
            .split_once(char::is_whitespace)
            .map(|(k, r)| (k, r.trim()))
            .unwrap_or((line, ""));
        match keyword {
            "schema" => schemes.push(depkit_core::parser::parse_scheme(rest).unwrap()),
            "row" => {
                let mut parts = rest.split_whitespace();
                let rel = parts.next().expect("row needs a relation").to_string();
                let values = parts
                    .map(|p| {
                        p.parse::<i64>()
                            .map(Value::Int)
                            .unwrap_or_else(|_| Value::str(p))
                    })
                    .collect();
                rows.push((rel, values));
            }
            other => panic!("fixture directive `{other}` not supported"),
        }
    }
    let mut db = Database::empty(DatabaseSchema::new(schemes).unwrap());
    for (rel, values) in rows {
        db.insert(&RelName::new(&rel), Tuple::new(values)).unwrap();
    }
    db
}

fn load_cover(text: &str) -> BTreeSet<Dependency> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse().expect("expected-cover line parses"))
        .collect()
}

fn check_fixture(name: &str) {
    let spec = std::fs::read_to_string(data_dir().join(format!("{name}.dep"))).unwrap();
    let expected = std::fs::read_to_string(data_dir().join(format!("{name}.cover"))).unwrap();
    let db = load_database(&spec);
    let expected = load_cover(&expected);

    let found = discover(&db);
    let got: BTreeSet<Dependency> = found.cover.iter().cloned().collect();
    assert_eq!(
        got, expected,
        "fixture `{name}`: discovered cover drifted from the pinned expectation"
    );
    // The pinned cover is itself checked: satisfied by the data, and it
    // implies everything mined.
    for d in &found.raw {
        assert!(db.satisfies(d).unwrap(), "fixture `{name}`: {d} violated");
        assert!(
            implied_by(&found.cover, d),
            "fixture `{name}`: {d} not implied by the cover"
        );
    }
}

#[test]
fn chain_fixture() {
    check_fixture("chain");
}

#[test]
fn employees_fixture() {
    check_fixture("employees");
}

#[test]
fn diamond_fixture() {
    check_fixture("diamond");
}

#[test]
fn orders_fixture() {
    check_fixture("orders");
}
