//! Differential tests for the discovery engine: everything it mines must
//! pass the exact `core::satisfy` checker on the source database
//! (soundness), planted dependencies must be rediscovered (completeness),
//! the emitted cover must be minimal (the acceptance criterion), and a
//! discovered cover must drive the incremental `Validator` without
//! violations — closing the loop between discovery and serving.

use depkit_bench::referential_workload;
use depkit_core::delta::Delta;
use depkit_core::generate::{
    random_database, random_ind, random_satisfying_database, random_schema, Rng, SchemaConfig,
};
use depkit_core::{Database, DatabaseSchema, Dependency};
use depkit_solver::discover::{discover, implied_by};
use depkit_solver::incremental::Validator;

fn small_schema(rng: &mut Rng) -> DatabaseSchema {
    random_schema(
        rng,
        &SchemaConfig {
            relations: 2,
            min_arity: 2,
            max_arity: 3,
        },
    )
}

/// Soundness: every mined dependency — raw and cover alike — holds in the
/// database it was mined from, and the cover both sits inside the raw set
/// and still implies all of it.
#[test]
fn discovered_dependencies_are_satisfied() {
    let mut rng = Rng::new(0xD15C0);
    for round in 0..12 {
        let schema = small_schema(&mut rng);
        let db = random_database(&mut rng, &schema, 6, 3);
        let found = discover(&db);
        for d in &found.raw {
            assert!(
                db.satisfies(d).unwrap(),
                "round {round}: discovered {d} is violated by its own database"
            );
        }
        for d in &found.cover {
            assert!(found.raw.contains(d), "round {round}: cover ⊄ raw ({d})");
        }
        for d in &found.raw {
            assert!(
                implied_by(&found.cover, d),
                "round {round}: cover does not imply raw member {d}"
            );
        }
    }
}

/// Completeness round-trip: a unary IND planted by construction is always
/// present in the raw mined set (SPIDER is exact on unary INDs), and the
/// minimized cover still implies it.
#[test]
fn planted_unary_inds_are_discovered() {
    let mut rng = Rng::new(0xC0FFEE);
    for round in 0..12 {
        // Arity 2 keeps the post-repair accidental IND cliques small; the
        // property under test (planted unary INDs reappear) is arity-blind.
        let schema = random_schema(
            &mut rng,
            &SchemaConfig {
                relations: 2,
                min_arity: 2,
                max_arity: 2,
            },
        );
        let mut planted: Vec<Dependency> = Vec::new();
        for _ in 0..3 {
            if let Some(ind) = random_ind(&mut rng, &schema, 1) {
                if !ind.is_trivial() {
                    planted.push(ind.into());
                }
            }
        }
        let db = random_satisfying_database(&mut rng, &schema, &planted, 6, 3);
        for d in &planted {
            assert!(db.satisfies(d).unwrap(), "round {round}: planting failed");
        }
        let found = discover(&db);
        for d in &planted {
            assert!(
                found.raw.contains(d),
                "round {round}: planted {d} missing from the raw mined set"
            );
            assert!(
                implied_by(&found.cover, d),
                "round {round}: planted {d} not implied by the cover"
            );
        }
    }
}

/// The acceptance criterion: on the referential workload the curated
/// Section 1 constraints are rediscovered, and the emitted cover is
/// minimal — removing any member leaves a set that no longer implies the
/// raw discovered set.
#[test]
fn cover_is_minimal_on_the_referential_workload() {
    let (_schema, sigma, db) = referential_workload(200, 8);
    let found = discover(&db);
    for d in &sigma {
        assert!(
            implied_by(&found.cover, d),
            "curated constraint {d} not rediscovered"
        );
    }
    assert!(!found.cover.is_empty());
    for i in 0..found.cover.len() {
        let mut rest = found.cover.clone();
        rest.remove(i);
        let still_complete = found.raw.iter().all(|d| implied_by(&rest, d));
        assert!(
            !still_complete,
            "cover member {} is redundant: the remainder still implies the raw set",
            found.cover[i]
        );
    }
}

/// Minimality also holds on random databases, where the raw set is mostly
/// accidental structure: dropping any cover member loses part of the raw
/// set.
#[test]
fn cover_is_minimal_on_random_databases() {
    let mut rng = Rng::new(0x4D31);
    for round in 0..10 {
        let schema = small_schema(&mut rng);
        let db = random_database(&mut rng, &schema, 6, 3);
        let found = discover(&db);
        for i in 0..found.cover.len() {
            let mut rest = found.cover.clone();
            rest.remove(i);
            let still_complete = found.raw.iter().all(|d| implied_by(&rest, d));
            assert!(
                !still_complete,
                "round {round}: cover member {} is redundant",
                found.cover[i]
            );
        }
    }
}

/// Discovery → serving loop: seed the incremental validator with a
/// discovered cover (always consistent, since discovery is sound), then
/// stream random delta batches that only re-insert existing projections —
/// delete-and-reinsert pairs and duplicate inserts. No batch may surface a
/// violation.
#[test]
fn discovered_cover_validates_reinsertion_deltas() {
    let mut rng = Rng::new(0xBEEF);
    for round in 0..15 {
        let schema = small_schema(&mut rng);
        let db = random_database(&mut rng, &schema, 10, 4);
        let found = discover(&db);
        let mut validator =
            Validator::new(&schema, &found.cover).expect("discovered covers are FDs and INDs");
        validator.seed(&db).expect("rows fit their schema");
        assert!(
            validator.is_consistent(),
            "round {round}: a sound discovery must validate its own source"
        );
        for batch in 0..5 {
            let mut delta = Delta::new();
            for relation in db.relations() {
                let rel = relation.scheme().name().clone();
                for t in relation.tuples() {
                    match rng.below(4) {
                        // Net no-op: delete then re-insert the same row.
                        0 => {
                            delta.delete(rel.clone(), t.clone());
                            delta.insert(rel.clone(), t.clone());
                        }
                        // Duplicate insert of a live row.
                        1 => {
                            delta.insert(rel.clone(), t.clone());
                        }
                        _ => {}
                    }
                }
            }
            if delta.is_empty() {
                continue;
            }
            validator.apply(&delta).expect("delta applies");
            assert!(
                validator.is_consistent(),
                "round {round} batch {batch}: re-inserting existing projections must not violate"
            );
        }
    }
}

/// The raw set is exactly the satisfied fragment for unary INDs: brute-force
/// every ordered column pair against `core::satisfy` and compare.
#[test]
fn unary_raw_set_matches_brute_force() {
    let mut rng = Rng::new(0x5A5A);
    for round in 0..15 {
        let schema = small_schema(&mut rng);
        let db = random_database(&mut rng, &schema, 6, 3);
        let found = discover(&db);
        for ls in schema.schemes() {
            for rs in schema.schemes() {
                for la in ls.attrs().attrs() {
                    for ra in rs.attrs().attrs() {
                        let ind = depkit_core::Ind::new(
                            ls.name().clone(),
                            depkit_core::attr::AttrSeq::new(vec![la.clone()]).unwrap(),
                            rs.name().clone(),
                            depkit_core::attr::AttrSeq::new(vec![ra.clone()]).unwrap(),
                        )
                        .unwrap();
                        if ind.is_trivial() {
                            continue;
                        }
                        let dep: Dependency = ind.into();
                        let satisfied = db.satisfies(&dep).unwrap();
                        assert_eq!(
                            found.raw.contains(&dep),
                            satisfied,
                            "round {round}: {dep} (satisfied = {satisfied})"
                        );
                    }
                }
            }
        }
    }
}

/// Discovery is read-only: the database is bit-identical afterwards.
#[test]
fn discovery_does_not_mutate_the_database() {
    let (_schema, _sigma, db) = referential_workload(50, 5);
    let before: Database = db.clone();
    let _found = discover(&db);
    assert_eq!(db, before);
}
