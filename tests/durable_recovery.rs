//! Crash-recovery differential: after any crash, the recovered catalog
//! must be **indistinguishable** from a serial oracle that applied
//! exactly the acknowledged commits — same rows, same health counters,
//! same generation.
//!
//! A crash is modeled the honest way: the durable catalog is dropped
//! with no shutdown, checkpoint, or sync of any kind, and recovery runs
//! from whatever the directory holds. Randomized schedules interleave
//! inserts, deletes, and checkpoints so the crash lands at arbitrary
//! WAL/checkpoint phases across seeds.

use depkit_core::prelude::*;
use depkit_core::wal::FsyncPolicy;
use depkit_solver::incremental::{CatalogState, Durability, DurabilityConfig};
use std::path::{Path, PathBuf};

fn spec() -> (DatabaseSchema, Vec<Dependency>) {
    let schema = DatabaseSchema::parse(&["EMP(NAME, DEPT)", "DEPT(DNO)"]).unwrap();
    let sigma = vec!["EMP[DEPT] <= DEPT[DNO]".parse().unwrap()];
    (schema, sigma)
}

fn tdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("depkit-recovery-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn cfg(dir: &Path) -> DurabilityConfig {
    DurabilityConfig {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Never,
        checkpoint_every: 0,
    }
}

/// Deterministic xorshift64* — the tests need reproducible schedules,
/// not statistical quality.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One random operation, staged identically into both catalogs.
fn stage_random(rng: &mut Rng, a: &mut depkit_solver::incremental::Session) {
    match rng.below(4) {
        0 => {
            let d = rng.below(6) as i64;
            a.stage_insert("DEPT", Tuple::ints(&[d])).unwrap();
        }
        1 => {
            let d = rng.below(6) as i64;
            a.stage_delete("DEPT", Tuple::ints(&[d])).unwrap();
        }
        2 => {
            let (n, d) = (rng.below(8), rng.below(6) as i64);
            a.stage_insert(
                "EMP",
                Tuple::new(vec![Value::str(format!("e{n}")), Value::Int(d)]),
            )
            .unwrap();
        }
        _ => {
            let (n, d) = (rng.below(8), rng.below(6) as i64);
            a.stage_delete(
                "EMP",
                Tuple::new(vec![Value::str(format!("e{n}")), Value::Int(d)]),
            )
            .unwrap();
        }
    }
}

fn assert_same(recovered: &CatalogState, oracle: &CatalogState, ctx: &str) {
    assert_eq!(
        recovered.generation(),
        oracle.generation(),
        "{ctx}: generation"
    );
    assert_eq!(
        recovered.snapshot().to_database(),
        oracle.snapshot().to_database(),
        "{ctx}: rows"
    );
    assert_eq!(
        recovered.snapshot().health(),
        oracle.snapshot().health(),
        "{ctx}: health counters"
    );
}

#[test]
fn randomized_schedules_recover_to_the_acked_oracle() {
    let (schema, sigma) = spec();
    for seed in 0..8u64 {
        let dir = tdir(&format!("sched{seed}"));
        let mut rng = Rng::new(seed + 1);
        let oracle = CatalogState::new(&schema, &sigma).unwrap();
        let (cat, dur, rep) = Durability::open(&schema, &sigma, cfg(&dir)).unwrap();
        assert!(rep.fresh, "seed {seed}: empty dir opens fresh");

        let commits = 20 + rng.below(20);
        for _ in 0..commits {
            let mut live = cat.begin();
            let mut shadow = oracle.begin();
            for _ in 0..=rng.below(4) {
                // The identical op sequence lands in both catalogs; clone
                // the RNG stream by replaying the same draws.
                let checkpoint = rng.0;
                stage_random(&mut rng, &mut live);
                rng.0 = checkpoint;
                stage_random(&mut rng, &mut shadow);
            }
            let a = live.commit_tagged(None).unwrap();
            let b = shadow.commit_tagged(None).unwrap();
            assert_eq!(a.applied, b.applied, "seed {seed}: same delta outcome");
            // Every ~6th commit, checkpoint — so across seeds the crash
            // lands before any checkpoint, right after one, and mid-WAL.
            if rng.below(6) == 0 {
                dur.checkpoint(&cat).unwrap();
            }
        }
        assert_same(&cat, &oracle, &format!("seed {seed}: pre-crash"));
        drop(cat);
        drop(dur); // crash: no shutdown checkpoint, no sync

        let (recovered, _dur2, rep2) = Durability::open(&schema, &sigma, cfg(&dir)).unwrap();
        assert!(!rep2.fresh, "seed {seed}: recovery is not a fresh start");
        assert_eq!(
            rep2.checkpoint_gen + rep2.replayed_commits,
            oracle.generation(),
            "seed {seed}: checkpoint + replay covers every acked commit"
        );
        assert_same(&recovered, &oracle, &format!("seed {seed}: post-crash"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn the_checkpoint_interval_triggers_by_itself() {
    let (schema, sigma) = spec();
    let dir = tdir("interval");
    let mut c = cfg(&dir);
    c.checkpoint_every = 3;
    let (cat, dur, _) = Durability::open(&schema, &sigma, c.clone()).unwrap();
    for i in 0..7 {
        let mut s = cat.begin();
        s.stage_insert("DEPT", Tuple::ints(&[i])).unwrap();
        s.commit_tagged(None).unwrap();
        dur.note_commit(&cat).unwrap();
    }
    drop(cat);
    drop(dur);
    // 7 commits at interval 3: checkpoints after #3 and #6, one commit
    // left in the WAL.
    let (recovered, _d, rep) = Durability::open(&schema, &sigma, c).unwrap();
    assert_eq!(rep.checkpoint_gen, 6);
    assert_eq!(rep.replayed_commits, 1);
    assert_eq!(recovered.generation(), 7);
    assert_eq!(recovered.total_rows(), 7);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_is_idempotent_across_repeated_crashes() {
    let (schema, sigma) = spec();
    let dir = tdir("idem");
    let oracle = CatalogState::new(&schema, &sigma).unwrap();
    {
        let (cat, _dur, _) = Durability::open(&schema, &sigma, cfg(&dir)).unwrap();
        for i in 0..5 {
            for c in [&cat, &oracle] {
                let mut s = c.begin();
                s.stage_insert("DEPT", Tuple::ints(&[i])).unwrap();
                s.commit_tagged(None).unwrap();
            }
        }
    } // crash #1
    for round in 0..3 {
        // Each recovery replays the same WAL; replaying must not grow
        // the log or the state (the sink is installed only after
        // replay, so recovered commits are not re-appended).
        let (cat, _dur, rep) = Durability::open(&schema, &sigma, cfg(&dir)).unwrap();
        assert_eq!(rep.replayed_commits, 5, "round {round}");
        assert_same(&cat, &oracle, &format!("round {round}"));
    } // crash #2, #3, #4 — all without a single clean shutdown
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tagged_commits_stay_idempotent_through_a_crash() {
    let (schema, sigma) = spec();
    let dir = tdir("tokens");
    {
        let (cat, _dur, _) = Durability::open(&schema, &sigma, cfg(&dir)).unwrap();
        let mut s = cat.begin();
        s.stage_insert("DEPT", Tuple::ints(&[1])).unwrap();
        s.commit_tagged(Some(("alice", "batch-1"))).unwrap();
    } // crash after the ack was (maybe) lost
    let (cat, _dur, rep) = Durability::open(&schema, &sigma, cfg(&dir)).unwrap();
    assert_eq!(rep.replayed_commits, 1);
    // The client retries the same batch under the same token: recovery
    // restored the token table from the WAL, so this replays, not
    // re-applies.
    let mut s = cat.begin();
    s.stage_insert("DEPT", Tuple::ints(&[1])).unwrap();
    let out = s.commit_tagged(Some(("alice", "batch-1"))).unwrap();
    assert!(out.replayed, "the retry hit the recovered token table");
    assert_eq!(out.generation, 1);
    assert_eq!(cat.total_rows(), 1, "applied exactly once");
    std::fs::remove_dir_all(&dir).unwrap();
}
