//! Differential property test for the serving layer: the incremental
//! [`Validator`] must report exactly the violation set a full recheck of
//! the mutated database computes, after every delta of every random
//! insert/delete sequence.
//!
//! This is the differential-testing contract of
//! `depkit_solver::incremental` (incremental == full revalidation), the
//! serving-workload analogue of `tests/compiled_vs_reference.rs`.

use depkit_core::generate::{random_fd, random_ind, random_schema, Rng, SchemaConfig};
use depkit_core::prelude::*;
use depkit_solver::incremental::{full_violations, Validator};
use proptest::prelude::*;

/// Build a random FD/IND constraint set over `schema`. Small arities and a
/// small value pool below make violations, repairs, and re-violations all
/// likely within a few batches.
fn random_sigma(rng: &mut Rng, schema: &DatabaseSchema) -> Vec<Dependency> {
    let mut sigma: Vec<Dependency> = Vec::new();
    for _ in 0..3 {
        let arity = rng.range(1, 2);
        if let Some(i) = random_ind(rng, schema, arity) {
            sigma.push(i.into());
        }
    }
    for _ in 0..3 {
        if let Some(f) = random_fd(rng, schema, 1, 1) {
            sigma.push(f.into());
        }
    }
    sigma
}

/// One random mutation batch: 1–6 inserts/deletes of rows drawn from a
/// 4-value pool (collisions with live rows are the interesting cases).
fn random_delta(rng: &mut Rng, schema: &DatabaseSchema) -> Delta {
    let mut delta = Delta::new();
    for _ in 0..rng.range(1, 6) {
        let scheme = rng.choose(schema.schemes());
        let row: Vec<i64> = (0..scheme.arity()).map(|_| rng.below(4) as i64).collect();
        let t = Tuple::ints(&row);
        if rng.chance(1, 3) {
            delta.delete(scheme.name().clone(), t);
        } else {
            delta.insert(scheme.name().clone(), t);
        }
    }
    delta
}

proptest! {
    /// Drive random insert/delete sequences through the incremental
    /// validator and the full-recheck reference path in lockstep; their
    /// violation sets, outcomes, and row counts must agree at every
    /// checkpoint.
    #[test]
    fn incremental_matches_full_recheck(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 3, min_arity: 2, max_arity: 3,
        });
        let sigma = random_sigma(&mut rng, &schema);
        let mut validator = Validator::new(&schema, &sigma).expect("FDs and INDs compile");
        let mut db = Database::empty(schema.clone());

        for _batch in 0..8 {
            let delta = random_delta(&mut rng, &schema);
            let inc_out = validator.apply(&delta).expect("delta is well formed");
            let full_out = db.apply_delta(&delta).expect("delta is well formed");
            prop_assert_eq!(inc_out, full_out);
            prop_assert_eq!(validator.total_rows(), db.total_tuples());
            prop_assert_eq!(
                validator.violations(),
                full_violations(&db, &sigma).expect("sigma is FD/IND only")
            );
            prop_assert_eq!(
                validator.is_consistent(),
                db.satisfies_all(&sigma).expect("sigma is well formed")
            );
        }
    }

    /// Seeding from a populated database is equivalent to replaying its
    /// rows as one big insert delta.
    #[test]
    fn seeding_matches_full_recheck(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 2, min_arity: 2, max_arity: 3,
        });
        let sigma = random_sigma(&mut rng, &schema);
        let db = depkit_core::generate::random_database(&mut rng, &schema, 12, 4);
        let mut validator = Validator::new(&schema, &sigma).expect("FDs and INDs compile");
        validator.seed(&db).expect("database matches schema");
        prop_assert_eq!(validator.total_rows(), db.total_tuples());
        prop_assert_eq!(
            validator.violations(),
            full_violations(&db, &sigma).expect("sigma is FD/IND only")
        );
    }
}
