//! Cross-crate integration tests: every major claim of the paper checked
//! end to end, spanning `depkit-core`, `depkit-solver`, `depkit-chase`,
//! `depkit-lba`, `depkit-perm`, and `depkit-axiom`.

use depkit_axiom::families::emvd::SagivWalecka;
use depkit_axiom::families::section6::Section6;
use depkit_axiom::families::section7::Section7;
use depkit_axiom::families::theorem44::Theorem44;
use depkit_axiom::proof::prove;
use depkit_chase::fdind_chase::{ChaseBudget, ChaseOutcome, FdIndChase};
use depkit_chase::ind_chase::ind_chase;
use depkit_core::generate::{
    for_each_small_database, random_ind, random_ind_set, random_mixed_set, random_schema, Rng,
    SchemaConfig,
};
use depkit_core::{Database, DatabaseSchema, Dependency};
use depkit_lba::{reduce, zoo};
use depkit_perm::{landau_function, landau_pair};
use depkit_solver::finite::FiniteEngine;
use depkit_solver::ind::{verify_walk, IndSolver};
use depkit_solver::interact::Saturator;

/// Theorem 3.1, three ways: the syntactic search (⊢ via IND1–3), the
/// semantic Rule (*) chase (⊨_fin), and proof objects — all agree, and
/// produced proofs check.
#[test]
fn theorem_3_1_three_way_agreement() {
    let mut rng = Rng::new(0x1984);
    for round in 0..120 {
        let schema = random_schema(
            &mut rng,
            &SchemaConfig {
                relations: 3,
                min_arity: 2,
                max_arity: 4,
            },
        );
        let sigma = random_ind_set(&mut rng, &schema, 5, 3);
        let Some(target) = random_ind(&mut rng, &schema, 2) else {
            continue;
        };
        let solver = IndSolver::new(&sigma);
        let syntactic = solver.implies(&target);
        let semantic = ind_chase(&schema, &sigma, &target, 500_000)
            .expect("within cap")
            .implied;
        assert_eq!(syntactic, semantic, "round {round}: {target}");
        match prove(&sigma, &target) {
            Some(proof) => {
                assert!(syntactic, "round {round}");
                proof.check(&sigma).expect("proof must check");
                assert_eq!(proof.conclusion(), Some(&target));
            }
            None => assert!(!syntactic, "round {round}"),
        }
        // Walks verify.
        if let Some(walk) = solver.walk(&target) {
            assert!(verify_walk(&sigma, &target, &walk), "round {round}");
        }
    }
}

/// Rule (*) chase counterexamples are genuine: they satisfy Σ and violate
/// the target.
#[test]
fn rule_star_counterexamples_are_models() {
    let mut rng = Rng::new(0x2001);
    let mut refuted = 0;
    for _ in 0..60 {
        let schema = random_schema(&mut rng, &SchemaConfig::default());
        let sigma = random_ind_set(&mut rng, &schema, 4, 2);
        let Some(target) = random_ind(&mut rng, &schema, 2) else {
            continue;
        };
        let result = ind_chase(&schema, &sigma, &target, 500_000).expect("cap");
        for ind in &sigma {
            assert!(result.database.satisfies(&ind.clone().into()).unwrap());
        }
        if !result.implied {
            refuted += 1;
            assert!(!result.database.satisfies(&target.into()).unwrap());
        }
    }
    assert!(refuted > 0, "the sweep should refute something");
}

/// The saturation engine is sound: everything it derives holds in every
/// small database satisfying Σ (exhaustive small-model check).
#[test]
fn saturator_soundness_vs_exhaustive_models() {
    let mut rng = Rng::new(0x3003);
    for _ in 0..12 {
        let schema = random_schema(
            &mut rng,
            &SchemaConfig {
                relations: 2,
                min_arity: 2,
                max_arity: 2,
            },
        );
        let sigma = random_mixed_set(&mut rng, &schema, 1, 2);
        let mut sat = Saturator::new(&sigma);
        sat.saturate();
        let derived = sat.derived();
        let counterexample = !for_each_small_database(&schema, 2, 2, &mut |db| {
            if sigma.iter().all(|d| db.satisfies(d).unwrap()) {
                for d in &derived {
                    if !db.satisfies(d).unwrap() {
                        eprintln!("unsound: {d} refuted by\n{db}");
                        return false;
                    }
                }
            }
            true
        });
        assert!(!counterexample, "saturator derived a non-consequence");
    }
}

/// The finite engine is sound for finite implication: exhaustive
/// small-model check (small models are finite models).
#[test]
fn finite_engine_soundness_vs_exhaustive_models() {
    let mut rng = Rng::new(0x4004);
    for _ in 0..10 {
        let schema = random_schema(
            &mut rng,
            &SchemaConfig {
                relations: 2,
                min_arity: 2,
                max_arity: 2,
            },
        );
        let sigma = random_mixed_set(&mut rng, &schema, 2, 2);
        let engine = FiniteEngine::new(&sigma);
        let derived = engine.derived();
        let counterexample = !for_each_small_database(&schema, 2, 2, &mut |db| {
            if sigma.iter().all(|d| db.satisfies(d).unwrap()) {
                for d in &derived {
                    if !db.satisfies(d).unwrap() {
                        eprintln!("unsound: {d} refuted by\n{db}");
                        return false;
                    }
                }
            }
            true
        });
        assert!(!counterexample, "finite engine derived a non-consequence");
    }
}

/// Theorem 3.3 end to end on every zoo machine and a random-machine sweep.
#[test]
fn pspace_reduction_agreement_sweep() {
    let machines = vec![
        zoo::blanker(),
        zoo::never_accept(),
        zoo::parity(),
        zoo::all_zeros(),
    ];
    let inputs: Vec<Vec<usize>> = vec![vec![1, 1], vec![2, 2], vec![1, 2, 1], vec![2, 2, 2]];
    for m in &machines {
        for input in &inputs {
            let direct = m.accepts(input, 5_000_000).expect("budget");
            let red = reduce(m, input).expect("well-formed");
            assert_eq!(direct, IndSolver::new(&red.sigma).implies(&red.target));
        }
    }
    for seed in 100..130 {
        let m = zoo::random_machine(seed, 2, 10);
        let input = vec![1, 2];
        let direct = m.accepts(&input, 5_000_000).expect("budget");
        let red = reduce(&m, &input).expect("well-formed");
        assert_eq!(
            direct,
            IndSolver::new(&red.sigma).implies(&red.target),
            "seed {seed}"
        );
    }
}

/// The Landau walk length is exactly f(m) — the Section 3 lower bound.
#[test]
fn landau_walk_lengths() {
    for m in [4usize, 6, 9, 12] {
        let (sigma, target, f) = landau_pair(m);
        assert_eq!(f, landau_function(m));
        let solver = IndSolver::new(&[sigma]);
        let (yes, stats) = solver.implies_with_stats(&target);
        assert!(yes);
        assert_eq!(stats.walk_length, Some(f as usize), "m={m}");
    }
}

/// Theorem 4.4 + Theorem 6.1 + Theorem 7.1 full pipelines.
#[test]
fn negative_results_full_pipelines() {
    assert!(Theorem44::new().verify().all_verified());
    Section6::new(3).verify().expect("Theorem 6.1 at k=3");
    Section7::new(2).verify().expect("Theorem 7.1 at n=2");
    SagivWalecka::new(3).verify(32).expect("Theorem 5.3 at k=3");
}

/// The Section 6 family's σ: finitely implied, unrestrictedly not, and
/// the goal-directed chase (unrestricted semantics) diverges rather than
/// answering — the undecidability boundary in action.
#[test]
fn section6_finite_vs_unrestricted_boundary() {
    let fam = Section6::new(2);
    assert!(fam.finite_implication_holds());
    let chase = FdIndChase::new(&fam.schema, &fam.sigma()).unwrap();
    let out = chase
        .implies(
            &fam.target.clone().into(),
            ChaseBudget {
                max_rounds: 10,
                max_tuples: 5_000,
            },
        )
        .unwrap();
    assert!(matches!(out, ChaseOutcome::Exhausted), "{out:?}");
}

/// End-to-end referential-integrity scenario across parser, satisfaction,
/// saturation, and chase.
#[test]
fn hr_scenario_end_to_end() {
    let schema =
        DatabaseSchema::parse(&["EMP(NAME, DEPT)", "DEPT(DNAME, HEAD)", "MGR(NAME, DEPT)"])
            .unwrap();
    let constraints: Vec<Dependency> = [
        "MGR[NAME, DEPT] <= EMP[NAME, DEPT]",
        "EMP[DEPT] <= DEPT[DNAME]",
        "DEPT[HEAD, DNAME] <= MGR[NAME, DEPT]",
        "EMP: NAME -> DEPT",
        "DEPT: DNAME -> HEAD",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect();

    // Derived: department heads are employees (IND composition), and the
    // MGR relation inherits EMP's key (Proposition 4.1).
    let mut sat = Saturator::new(&constraints);
    sat.saturate();
    assert!(sat.implies(&"DEPT[HEAD] <= EMP[NAME]".parse().unwrap()));
    assert!(sat.implies(&"MGR: NAME -> DEPT".parse().unwrap()));

    // The chase agrees and proves it from the tableau.
    let chase = FdIndChase::new(&schema, &constraints).unwrap();
    let out = chase
        .implies(
            &"DEPT[HEAD] <= EMP[NAME]".parse().unwrap(),
            ChaseBudget::default(),
        )
        .unwrap();
    assert!(out.proved(), "{out:?}");

    // And a concrete database obeying the constraints obeys the derived
    // dependency too.
    let mut db = Database::empty(schema);
    db.insert_str("EMP", &[&["h", "math"], &["n", "math"]])
        .unwrap();
    db.insert_str("DEPT", &[&["math", "h"]]).unwrap();
    db.insert_str("MGR", &[&["h", "math"]]).unwrap();
    assert!(db.satisfies_all(constraints.iter()).unwrap());
    assert!(db
        .satisfies(&"DEPT[HEAD] <= EMP[NAME]".parse().unwrap())
        .unwrap());
}

/// Typed fast path agrees with the general search across a random sweep
/// of typed instances.
#[test]
fn typed_fast_path_agreement_sweep() {
    let mut rng = Rng::new(0x7777);
    for _ in 0..80 {
        let schema = random_schema(
            &mut rng,
            &SchemaConfig {
                relations: 4,
                min_arity: 2,
                max_arity: 3,
            },
        );
        // Build typed INDs only: same attr sequence both sides.
        let mut sigma = Vec::new();
        for _ in 0..5 {
            if let Some(ind) = random_ind(&mut rng, &schema, 2) {
                if let Ok(t) = depkit_core::Ind::new(
                    ind.lhs_rel.clone(),
                    ind.lhs_attrs.clone(),
                    ind.rhs_rel.clone(),
                    ind.lhs_attrs.clone(),
                ) {
                    if t.is_well_formed(&schema).is_ok() {
                        sigma.push(t);
                    }
                }
            }
        }
        let Some(raw) = random_ind(&mut rng, &schema, 2) else {
            continue;
        };
        let Ok(target) = depkit_core::Ind::new(
            raw.lhs_rel.clone(),
            raw.lhs_attrs.clone(),
            raw.rhs_rel.clone(),
            raw.lhs_attrs.clone(),
        ) else {
            continue;
        };
        if target.is_well_formed(&schema).is_err() {
            continue;
        }
        let solver = IndSolver::new(&sigma);
        assert_eq!(Some(solver.implies(&target)), solver.implies_typed(&target));
    }
}
