//! Property-based tests (proptest) on the core data structures and the
//! invariants the paper's constructions rely on.

use depkit_core::attr::{Attr, AttrSeq};
use depkit_core::generate::{
    random_database, random_fd, random_ind, random_ind_set, random_mixed_set,
    random_satisfying_database, random_schema, Rng, SchemaConfig,
};
use depkit_core::symbolic::{DioSet, Pattern, SymbolicDatabase};
use depkit_core::{DatabaseSchema, Dependency, Ind, Rd};
use depkit_solver::fd::FdEngine;
use depkit_solver::ind::IndSolver;
use depkit_solver::interact::Saturator;
use proptest::prelude::*;

proptest! {
    /// Display → parse is the identity on generated dependencies.
    #[test]
    fn parser_roundtrip(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = random_schema(&mut rng, &SchemaConfig::default());
        let mut deps: Vec<Dependency> = Vec::new();
        if let Some(i) = random_ind(&mut rng, &schema, 2) { deps.push(i.into()); }
        if let Some(f) = random_fd(&mut rng, &schema, 1, 1) { deps.push(f.into()); }
        if let Some(r) = depkit_core::generate::random_rd(&mut rng, &schema) { deps.push(r.into()); }
        for d in deps {
            let round: Dependency = d.to_string().parse().expect("printed form parses");
            prop_assert_eq!(round, d);
        }
    }

    /// The syntactic IND search (IND1–3 complete, Theorem 3.1) agrees with
    /// the semantic Rule (*) chase on random instances.
    #[test]
    fn ind_solver_chase_agreement(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 3, min_arity: 2, max_arity: 3,
        });
        let sigma = random_ind_set(&mut rng, &schema, 4, 2);
        if let Some(target) = random_ind(&mut rng, &schema, 2) {
            let syntactic = IndSolver::new(&sigma).implies(&target);
            let semantic = depkit_chase::ind_chase::ind_chase(&schema, &sigma, &target, 300_000)
                .expect("within cap").implied;
            prop_assert_eq!(syntactic, semantic);
        }
    }

    /// FD closure (Beeri–Bernstein) agrees with the two-tuple equality
    /// chase (Armstrong completeness).
    #[test]
    fn fd_closure_chase_agreement(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 1, min_arity: 3, max_arity: 5,
        });
        let scheme = schema.schemes()[0].clone();
        let mut fds = Vec::new();
        for _ in 0..4 {
            if let Some(f) = random_fd(&mut rng, &schema, 1, 1) { fds.push(f); }
        }
        if let Some(target) = random_fd(&mut rng, &schema, 1, 1) {
            let closure = FdEngine::new(target.rel.clone(), &fds).implies(&target);
            let chase = depkit_chase::fd_chase::implies_fd_semantic(&fds, &scheme, &target);
            prop_assert_eq!(closure, chase);
        }
    }

    /// Satisfaction is invariant under IND2: if a database satisfies an
    /// IND, it satisfies every projection-permutation of it.
    #[test]
    fn ind2_soundness_on_databases(seed in any::<u64>(), keep in 1usize..3) {
        let mut rng = Rng::new(seed);
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 2, min_arity: 3, max_arity: 3,
        });
        let db = random_database(&mut rng, &schema, 6, 3);
        if let Some(ind) = random_ind(&mut rng, &schema, 3) {
            if db.satisfies(&ind.clone().into()).unwrap() {
                let positions = rng.distinct_indices(3, keep.min(3));
                let projected = ind.select(&positions).expect("valid positions");
                prop_assert!(db.satisfies(&projected.into()).unwrap());
            }
        }
    }

    /// A database satisfies an RD iff it satisfies the RD's unary
    /// decomposition (the paper's remark in Section 4).
    #[test]
    fn rd_unary_decomposition_semantics(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 1, min_arity: 3, max_arity: 4,
        });
        let db = random_database(&mut rng, &schema, 5, 2);
        let scheme = &schema.schemes()[0];
        let n = scheme.arity();
        let lhs_pos = rng.distinct_indices(n, 2);
        let rhs_pos = rng.distinct_indices(n, 2);
        let rd = Rd::new(
            scheme.name().clone(),
            scheme.attrs().select(&lhs_pos).unwrap(),
            scheme.attrs().select(&rhs_pos).unwrap(),
        ).unwrap();
        let whole = db.satisfies(&rd.clone().into()).unwrap();
        let parts = rd.unary_decomposition().into_iter()
            .all(|u| db.satisfies(&u.into()).unwrap());
        prop_assert_eq!(whole, parts);
    }

    /// Saturator soundness on random models: if a random database
    /// satisfies Σ, it satisfies everything the saturator derives.
    #[test]
    fn saturator_soundness_on_random_models(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 2, min_arity: 2, max_arity: 3,
        });
        let sigma = random_mixed_set(&mut rng, &schema, 2, 2);
        let mut sat = Saturator::new(&sigma);
        sat.saturate();
        let derived = sat.derived();
        for _ in 0..10 {
            let db = random_database(&mut rng, &schema, 4, 2);
            if sigma.iter().all(|d| db.satisfies(d).unwrap()) {
                for d in &derived {
                    prop_assert!(db.satisfies(d).unwrap(), "unsound derivation {}", d);
                }
            }
        }
    }

    /// Symbolic FD violations are real: the two witness tuples both occur
    /// in the infinite relation (checked via a sufficiently large prefix),
    /// and that prefix violates the FD too.
    #[test]
    fn symbolic_fd_violations_materialize(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = DatabaseSchema::parse(&["R(A, B)"]).unwrap();
        let mut db = SymbolicDatabase::empty(schema);
        let r = db.relation_mut("R").unwrap();
        for _ in 0..2 {
            let p = Pattern::from_pairs(&[
                (rng.below(3) as i64, rng.below(5) as i64),
                (rng.below(3) as i64, rng.below(5) as i64),
            ]);
            r.add_pattern(p).unwrap();
        }
        let fd: Dependency = "R: A -> B".parse().unwrap();
        match db.check(&fd) {
            Ok(Some(_)) => {
                // Violation must appear in a big prefix.
                let prefix = db.prefix(64);
                prop_assert!(!prefix.satisfies(&fd).unwrap());
            }
            Ok(None) => {
                // Satisfaction is inherited by every sub-relation.
                let prefix = db.prefix(64);
                prop_assert!(prefix.satisfies(&fd).unwrap());
            }
            Err(_) => {} // outside the decidable fragment: nothing to check
        }
    }

    /// Symbolic IND decisions agree with prefixes in the sound direction:
    /// a reported violation witness is missing from every prefix.
    #[test]
    fn symbolic_ind_violations_materialize(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = DatabaseSchema::parse(&["L(A)", "R(B)"]).unwrap();
        let mut db = SymbolicDatabase::empty(schema);
        db.relation_mut("L").unwrap().add_pattern(Pattern::from_pairs(&[
            (1 + rng.below(3) as i64, rng.below(4) as i64),
        ])).unwrap();
        db.relation_mut("R").unwrap().add_pattern(Pattern::from_pairs(&[
            (1 + rng.below(3) as i64, rng.below(4) as i64),
        ])).unwrap();
        let ind: Dependency = "L[A] <= R[B]".parse().unwrap();
        if let Ok(Some(depkit_core::symbolic::SymbolicViolation::Ind(t))) = db.check(&ind) {
            // The witness tuple is in L's infinite relation and its value
            // never appears in R: check on a generous prefix.
            let prefix = db.prefix(256);
            let l = prefix.relation(&depkit_core::RelName::new("L")).unwrap();
            let r = prefix.relation(&depkit_core::RelName::new("R")).unwrap();
            // witness value not among R's B column
            let wanted = t.values()[0].clone();
            prop_assert!(l.tuples().any(|u| u.values()[0] == wanted));
            prop_assert!(!r.tuples().any(|u| u.values()[0] == wanted));
        }
    }

    /// Diophantine solver: every reported solution satisfies the system.
    #[test]
    fn dioset_solutions_satisfy_equations(
        a1 in -5i128..6, c1 in -5i128..6, e1 in -10i128..11,
        a2 in -5i128..6, c2 in -5i128..6, e2 in -10i128..11,
    ) {
        let s = DioSet::Full.intersect(a1, c1, e1).intersect(a2, c2, e2);
        let check = |i: i128, j: i128| {
            a1 * i - c1 * j == e1 && a2 * i - c2 * j == e2
        };
        match s {
            DioSet::Empty => {}
            DioSet::Point(i, j) => prop_assert!(check(i, j)),
            DioSet::Line { i0, j0, di, dj } => {
                for t in -3i128..=3 {
                    prop_assert!(check(i0 + di * t, j0 + dj * t), "t={}", t);
                }
            }
            DioSet::Full => {
                for (i, j) in [(0, 0), (1, 5), (-2, 7)] {
                    prop_assert!(check(i, j));
                }
            }
        }
    }

    /// Proof objects survive checking; mutated conclusions do not.
    #[test]
    fn proofs_check_and_mutations_fail(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 3, min_arity: 2, max_arity: 3,
        });
        let sigma = random_ind_set(&mut rng, &schema, 4, 2);
        let Some(target) = random_ind(&mut rng, &schema, 2) else { return Ok(()); };
        if let Some(proof) = depkit_axiom::proof::prove(&sigma, &target) {
            prop_assert!(proof.check(&sigma).is_ok());
            // Mutate the conclusion's right side to a (likely) different IND.
            let mut bad = proof.clone();
            let last = bad.lines.len() - 1;
            let orig = bad.lines[last].ind.clone();
            let swapped = Ind::new(
                orig.rhs_rel.clone(), orig.rhs_attrs.clone(),
                orig.lhs_rel.clone(), orig.lhs_attrs.clone(),
            ).unwrap();
            if swapped != orig {
                bad.lines[last].ind = swapped;
                prop_assert!(bad.check(&sigma).is_err());
            }
        }
    }

    /// Attribute sequences: `select` preserves distinctness and order
    /// semantics used by IND2.
    #[test]
    fn attr_seq_select_invariants(seed in any::<u64>(), k in 1usize..4) {
        let mut rng = Rng::new(seed);
        let names: Vec<String> = (0..5).map(|i| format!("A{i}")).collect();
        let seq = AttrSeq::new(names.iter().map(Attr::new).collect()).unwrap();
        let k = k.min(seq.len());
        let positions = rng.distinct_indices(seq.len(), k);
        let selected = seq.select(&positions).unwrap();
        prop_assert_eq!(selected.len(), k);
        for (out_idx, &p) in positions.iter().enumerate() {
            prop_assert_eq!(&selected.attrs()[out_idx], &seq.attrs()[p]);
        }
    }
}

proptest! {
    /// Armstrong relations are exact: the FDs holding in the generated
    /// relation are precisely the implied ones (sampled over the FD
    /// universe).
    #[test]
    fn armstrong_relation_exactness(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 1, min_arity: 3, max_arity: 4,
        });
        let scheme = schema.schemes()[0].clone();
        let mut fds = Vec::new();
        for _ in 0..3 {
            if let Some(f) = random_fd(&mut rng, &schema, 1, 1) { fds.push(f); }
        }
        let engine = FdEngine::new(scheme.name().clone(), &fds);
        let r = depkit_solver::armstrong::armstrong_relation(&engine, &scheme);
        for _ in 0..10 {
            let lhs_n = 1 + rng.below(2);
            if let Some(tau) = random_fd(&mut rng, &schema, lhs_n, 1) {
                let holds = depkit_core::satisfy::check_fd(&r, &tau).unwrap().is_none();
                prop_assert_eq!(holds, engine.implies(&tau), "τ = {}", tau);
            }
        }
    }

    /// BCNF decomposition invariants: every fragment is in BCNF under its
    /// projected FDs, all attributes survive, and every embedding IND is
    /// typed.
    #[test]
    fn bcnf_decomposition_invariants(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 1, min_arity: 3, max_arity: 4,
        });
        let scheme = schema.schemes()[0].clone();
        let mut fds = Vec::new();
        for _ in 0..3 {
            if let Some(f) = random_fd(&mut rng, &schema, 1, 1) { fds.push(f); }
        }
        let frags = depkit_solver::design::bcnf_decompose(&fds, &scheme);
        prop_assert!(!frags.is_empty());
        for frag in &frags {
            let engine = FdEngine::new(frag.scheme.name().clone(), &frag.fds);
            prop_assert!(depkit_solver::design::is_bcnf(&engine, &frag.scheme));
            prop_assert!(frag.embedding.is_typed());
        }
        for a in scheme.attrs().attrs() {
            prop_assert!(frags.iter().any(|f| f.scheme.attrs().contains_attr(a)));
        }
    }

    /// 3NF synthesis preserves the minimal cover and always covers a key.
    #[test]
    fn threenf_invariants(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 1, min_arity: 3, max_arity: 4,
        });
        let scheme = schema.schemes()[0].clone();
        let mut fds = Vec::new();
        for _ in 0..3 {
            if let Some(f) = random_fd(&mut rng, &schema, 1, 1) { fds.push(f); }
        }
        let frags = depkit_solver::design::threenf_synthesis(&fds, &scheme);
        for f in depkit_solver::fd::minimal_cover(&fds) {
            prop_assert!(frags.iter().any(|frag| {
                f.lhs.attrs().iter().all(|a| frag.scheme.attrs().contains_attr(a))
                    && f.rhs.attrs().iter().all(|a| frag.scheme.attrs().contains_attr(a))
            }), "cover FD {} lost", f);
        }
        let engine = FdEngine::new(scheme.name().clone(), &fds);
        let keys = engine.candidate_keys(&scheme);
        let key_covered = keys.iter().any(|key| {
            frags
                .iter()
                .any(|fr| key.iter().all(|a| fr.scheme.attrs().contains_attr(a)))
        });
        prop_assert!(key_covered);
    }

    /// Discovery round trip on planted dependencies: repair a random
    /// database until a random Σ of FDs and INDs holds by construction,
    /// mine it, and check the minimized cover still implies every planted
    /// dependency (via the FdEngine/IndSolver dispatch of
    /// `discover::implied_by`).
    #[test]
    fn discovery_cover_implies_planted_dependencies(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        // Arity 2: repair can empty relations, and wider schemas then grow
        // large accidental IND cliques that only slow minimization down.
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 2, min_arity: 2, max_arity: 2,
        });
        let planted = random_mixed_set(&mut rng, &schema, 2, 2);
        let db = random_satisfying_database(&mut rng, &schema, &planted, 6, 3);
        for d in &planted {
            prop_assert!(db.satisfies(d).unwrap(), "repair left {} violated", d);
        }
        let found = depkit_solver::discover::discover(&db);
        for d in &planted {
            prop_assert!(
                depkit_solver::discover::implied_by(&found.cover, d),
                "planted {} not implied by the discovered cover", d
            );
        }
    }

    /// Planted-noise bound for approximate discovery: flip `k` of the
    /// `n` rows of the left relation and the planted dependencies must
    /// survive mining at a tolerance just above `k/n`, scored with
    /// confidence ≥ 1 − k/n — each flipped row adds at most one unit of
    /// g3 error (FD) and at most one missing row (IND), so `misses ≤ k`.
    /// Only left-relation rows are flipped: corrupting the *right* side
    /// of an IND can orphan arbitrarily many left rows at once, and no
    /// per-row bound would hold.
    #[test]
    fn planted_deps_survive_row_flips_with_bounded_confidence(
        seed in any::<u64>(), k in 0usize..6,
    ) {
        use depkit_core::{Database, RelName, Tuple};
        use depkit_solver::discover::{discover_with_config, DiscoveryConfig};
        let mut rng = Rng::new(seed);
        let schema = DatabaseSchema::parse(&["L(A, B)", "R(C, D)"]).unwrap();
        // domain ≥ 3 keeps `∅ -> A` outside every budget we mine at
        // (g3(∅→A) = domain + k − 2 > k + ½): were it inside, the
        // lattice's LHS prune would bar A from minimal left sides and
        // subsume the planted FD instead of emitting it.
        let domain = 3 + rng.below(5) as i64;
        // f: A -> B is the planted FD's witness function; every A value
        // appears in R[C], witnessing the planted IND. Pinning f(0)=0 and
        // f(1)=1 keeps B from being near-constant, so the vacuous
        // `∅ -> B` stays outside any budget we mine at and cannot
        // subsume the planted FD as the minimal form.
        let f: Vec<i64> = (0..domain)
            .map(|a| if a < 2 { a } else { rng.below(50) as i64 })
            .collect();
        let mut rows: Vec<(i64, i64)> = (0..domain).map(|a| (a, f[a as usize])).collect();
        // Flip k rows: relations are sets, so flipping one copy of a
        // duplicated clean row is the same as appending the dirty row —
        // append, keeping every clean witness present. Even flips dirty
        // the IND (fresh A value), odd flips dirty the FD (same A, fresh
        // B). Fresh values are negative, colliding with nothing R or f
        // can produce, so all n = domain + k rows are distinct.
        for i in 0..k {
            let fresh = -(1 + i as i64);
            if i % 2 == 0 {
                rows.push((fresh, fresh));
            } else {
                rows.push((i as i64 % domain, fresh));
            }
        }
        let n = rows.len();
        let mut db = Database::empty(schema);
        for (a, b) in rows {
            db.insert(&RelName::new("L"), Tuple::ints(&[a, b])).unwrap();
        }
        for a in 0..domain {
            db.insert(&RelName::new("R"), Tuple::ints(&[a, rng.below(9) as i64]))
                .unwrap();
        }
        let config = DiscoveryConfig {
            max_error: (k as f64 + 0.5) / n as f64,
            ..DiscoveryConfig::default()
        };
        let found = discover_with_config(&db, &config);
        for dep_src in ["L[A] <= R[C]", "L: A -> B"] {
            let dep: Dependency = dep_src.parse().unwrap();
            let s = found
                .scored
                .iter()
                .find(|s| s.dep == dep)
                .unwrap_or_else(|| panic!("planted `{dep}` was mined away: {:?}", found.scored));
            prop_assert!(
                s.misses <= k as u64,
                "planted {} has {} misses from {} flipped rows", dep, s.misses, k
            );
            prop_assert!(
                s.confidence() >= 1.0 - k as f64 / n as f64 - 1e-9,
                "planted {} confidence {} below 1 - k/n = {}",
                dep, s.confidence(), 1.0 - k as f64 / n as f64
            );
        }
    }

    /// Spill round-trip: writing an arbitrary id multiset as sorted runs
    /// and merging the runs back yields exactly the in-memory
    /// `sorted_distinct` answer, for any chunk size — the spilled and
    /// resident backings of `DistinctStream` are interchangeable.
    #[test]
    fn spill_runs_roundtrip_to_sorted_distinct(seed in any::<u64>()) {
        use depkit_core::column::RelationColumns;
        use depkit_core::spill::{merge_run_set, write_sorted_runs, SpillDir, SpillStats};
        let mut rng = Rng::new(seed);
        let len = rng.below(3_000);
        let domain = 1 + rng.below(1_200);
        let values: Vec<u32> = (0..len).map(|_| rng.below(domain) as u32).collect();
        let chunk_ids = 1 + rng.below(256); // the writer clamps to >= 16

        let mut column = RelationColumns::new(1);
        for &v in &values {
            column.push_row(&[v]);
        }
        let expected = column.sorted_distinct(0);

        let dir = SpillDir::create_in(&std::env::temp_dir()).expect("spill dir");
        let mut stats = SpillStats::default();
        let set = write_sorted_runs(&values, chunk_ids, &dir, 0, &mut stats).expect("write runs");
        prop_assert_eq!(stats.runs_written, values.chunks(chunk_ids.max(16)).count());
        let merged: Vec<u32> = merge_run_set(&set, &dir, &mut stats).expect("merge").collect();
        prop_assert_eq!(merged, expected);
    }

    /// Weak acyclicity soundness: when the criterion accepts, the chase
    /// terminates with a definite answer (never `Exhausted`).
    #[test]
    fn weak_acyclicity_guarantees_termination(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 3, min_arity: 2, max_arity: 3,
        });
        let sigma = random_mixed_set(&mut rng, &schema, 2, 3);
        if depkit_chase::acyclic::weakly_acyclic(&schema, &sigma).unwrap() {
            if let Some(target) = random_fd(&mut rng, &schema, 1, 1) {
                let got = depkit_chase::acyclic::decide(&schema, &sigma, &target.into()).unwrap();
                prop_assert!(got.is_some());
            }
        }
    }
}
