//! Concurrency stress suite for the snapshot-isolated catalog behind
//! `depkit serve`.
//!
//! Two contracts:
//!
//! 1. **Serializability in commit order.** N threads run randomly
//!    interleaved sessions (random staging, random commit/abort) against
//!    one shared [`CatalogState`]. Because staged operations are absolute
//!    presence ops applied to the *latest* state at commit time, the
//!    final catalog must equal a single-threaded oracle that replays the
//!    committed deltas in commit (generation) order — and its violation
//!    set must match a from-scratch recheck of that oracle.
//! 2. **Snapshot isolation.** A snapshot taken while another session has
//!    staged-but-uncommitted operations never observes them: staged
//!    inserts are invisible, staged deletes leave the row visible, and
//!    row counts / violations are those of the committed state
//!    (property-checked over random staging).

use std::collections::BTreeSet;
use std::sync::Mutex;
use std::thread;

use depkit_core::delta::Delta;
use depkit_core::prelude::*;
use depkit_solver::incremental::{full_violations, CatalogState, ViolationKey};
use proptest::prelude::*;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// The referential-integrity catalog every serve test speaks:
/// EMP(EID, DNO) / DEPT(DNO, MGR) with the foreign key and two FDs.
fn referential_catalog() -> (DatabaseSchema, Vec<Dependency>, CatalogState) {
    let schema = DatabaseSchema::parse(&["EMP(EID, DNO)", "DEPT(DNO, MGR)"]).unwrap();
    let sigma: Vec<Dependency> = vec![
        "EMP[DNO] <= DEPT[DNO]".parse().unwrap(),
        "EMP: EID -> DNO".parse().unwrap(),
        "DEPT: DNO -> MGR".parse().unwrap(),
    ];
    let cat = CatalogState::new(&schema, &sigma).unwrap();
    (schema, sigma, cat)
}

/// A small consistent base instance: `depts` departments, `emps`
/// employees round-robined over them.
fn base_database(schema: &DatabaseSchema, emps: u32, depts: u32) -> Database {
    let mut db = Database::empty(schema.clone());
    for d in 0..depts {
        let row = Tuple::strs(&[&format!("d{d}"), &format!("m{}", d % 2)]);
        db.insert(&RelName::new("DEPT"), row).unwrap();
    }
    for e in 0..emps {
        let row = Tuple::strs(&[&format!("e{e}"), &format!("d{}", e % depts.max(1))]);
        db.insert(&RelName::new("EMP"), row).unwrap();
    }
    db
}

/// One random staged operation over the shared value universe. The
/// universe is deliberately small (16 employees, 6 departments) so
/// threads collide on the same rows constantly.
fn random_op(rng: &mut StdRng) -> (&'static str, Tuple) {
    if rng.random_range(0..2u32) == 0 {
        let eid = format!("e{}", rng.random_range(0..16u32));
        let dno = format!("d{}", rng.random_range(0..6u32));
        ("EMP", Tuple::strs(&[&eid, &dno]))
    } else {
        let dno = format!("d{}", rng.random_range(0..6u32));
        let mgr = format!("m{}", rng.random_range(0..3u32));
        ("DEPT", Tuple::strs(&[&dno, &mgr]))
    }
}

/// Contract 1: randomly interleaved commit/abort sessions across 8
/// threads equal a serial replay of the committed deltas in commit
/// order.
#[test]
fn concurrent_sessions_match_a_serial_oracle() {
    const THREADS: u64 = 8;
    const ROUNDS: usize = 40;
    let (schema, sigma, cat) = referential_catalog();
    let base = base_database(&schema, 8, 4);
    cat.seed(&base).unwrap();

    // Committed deltas tagged with the generation their commit
    // published. Aborted sessions leave no entry — and must leave no
    // trace in the catalog either.
    let committed: Mutex<Vec<(u64, Delta)>> = Mutex::new(Vec::new());

    thread::scope(|scope| {
        for tid in 0..THREADS {
            let cat = cat.clone();
            let committed = &committed;
            let sigma = &sigma;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x5E55_1010 + tid);
                for _ in 0..ROUNDS {
                    let mut s = cat.begin();
                    for _ in 0..rng.random_range(0..6u32) {
                        let (rel, t) = random_op(&mut rng);
                        if rng.random_range(0..3u32) == 0 {
                            s.stage_delete(rel, t).unwrap();
                        } else {
                            s.stage_insert(rel, t).unwrap();
                        }
                    }
                    // Mid-flight reads keep pins live across commits, so
                    // vacuuming and generation pruning race with us too.
                    // Each pinned view must agree with a full recheck of
                    // its own materialization.
                    if rng.random_range(0..4u32) == 0 {
                        let snap = cat.snapshot();
                        let db = snap.to_database();
                        assert_eq!(
                            snap.violations(),
                            full_violations(&db, sigma).unwrap(),
                            "pinned snapshot at gen {} disagrees with full recheck",
                            snap.generation()
                        );
                    }
                    if rng.random_range(0..4u32) == 0 {
                        s.abort();
                    } else {
                        let staged = s.staged().clone();
                        let out = s.commit();
                        committed.lock().unwrap().push((out.generation, staged));
                    }
                }
            });
        }
    });

    // Serial oracle: replay the committed deltas in commit order. Ties
    // (no-op commits share the generation of the state they observed)
    // are order-irrelevant because every op is an idempotent absolute
    // presence op.
    let mut log = committed.into_inner().unwrap();
    log.sort_by_key(|&(generation, _)| generation);
    let mut oracle = base;
    for (_, delta) in &log {
        oracle.apply_delta(delta).unwrap();
    }

    let snap = cat.snapshot();
    assert_eq!(snap.to_database(), oracle, "final state != serial replay");
    assert_eq!(
        snap.violations(),
        full_violations(&oracle, &sigma).unwrap(),
        "violation set != full recheck of the oracle"
    );
}

/// What a dependency's health *tracks*, recomputed from scratch: distinct
/// left-hand-side groups for an FD, distinct left projections for an IND.
fn tracked_oracle(db: &Database, dep: &Dependency) -> u64 {
    let (rel, attrs) = match dep {
        Dependency::Fd(fd) => (&fd.rel, &fd.lhs),
        Dependency::Ind(ind) => (&ind.lhs_rel, &ind.lhs_attrs),
        other => panic!("catalog sigma holds FDs and INDs only, got {other}"),
    };
    let rel = db.relation(rel).unwrap();
    let cols = rel.scheme().columns(attrs).unwrap();
    rel.tuples()
        .map(|t| {
            cols.iter()
                .map(|&c| t.values()[c].clone())
                .collect::<Vec<_>>()
        })
        .collect::<BTreeSet<_>>()
        .len() as u64
}

/// The health side of the live-monitoring story: satisfaction ratios move
/// by exactly the committed delta — one dangling employee per commit
/// degrades the foreign key from `r/(5+r)` violating keys, in O(delta)
/// counter bumps rather than any rescan — while snapshots pinned at
/// earlier generations keep reporting the ratio of *their* generation.
#[test]
fn health_ratios_update_per_delta_and_stay_pinned() {
    let (schema, sigma, cat) = referential_catalog();
    // 10 employees over 5 departments: 5 distinct DNO keys tracked by
    // the foreign key, all satisfied.
    let base = base_database(&schema, 10, 5);
    cat.seed(&base).unwrap();
    let seeded = cat.snapshot();
    assert!(
        seeded
            .health()
            .iter()
            .all(|h| h.violating == 0 && h.ratio() == 1.0),
        "seeded base must be fully satisfied: {:?}",
        seeded.health()
    );

    let mut pinned = vec![seeded];
    let mut last_ratio = 1.0f64;
    for r in 1..=6u64 {
        let mut s = cat.begin();
        let ghost = Tuple::strs(&[&format!("g{r}"), &format!("ghost{r}")]);
        s.stage_insert("EMP", ghost).unwrap();
        s.commit();
        let snap = cat.snapshot();
        let fk = &snap.health()[0];
        assert_eq!(fk.dep, sigma[0], "health is reported in Σ order");
        assert_eq!(
            (fk.violating, fk.tracked),
            (r, 5 + r),
            "commit #{r} must add exactly one violating key and one tracked key"
        );
        assert!(
            fk.ratio() < last_ratio,
            "the foreign key must degrade with every dangling commit"
        );
        last_ratio = fk.ratio();
        // The FDs never see a duplicate left side: still fully satisfied.
        for h in &snap.health()[1..] {
            assert_eq!((h.violating, h.ratio()), (0, 1.0), "{} regressed", h.dep);
        }
        pinned.push(snap);
    }

    // Each pinned snapshot still answers with its own generation's ratio.
    for (r, snap) in pinned.iter().enumerate() {
        let fk = &snap.health()[0];
        assert_eq!(
            (fk.violating, fk.tracked),
            (r as u64, 5 + r as u64),
            "pinned snapshot at gen {} lost its ratio",
            snap.generation()
        );
    }
}

/// Health under contention: readers snapshotting mid-storm must see
/// per-dependency counters that agree with a from-scratch recheck of
/// their own materialization — the live `health` verb is just this
/// snapshot read over the wire.
#[test]
fn concurrent_health_readers_agree_with_a_full_recheck() {
    let (schema, sigma, cat) = referential_catalog();
    let base = base_database(&schema, 8, 4);
    cat.seed(&base).unwrap();

    thread::scope(|scope| {
        for tid in 0..4u64 {
            let cat = cat.clone();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x4EA1_7000 + tid);
                for _ in 0..30 {
                    let mut s = cat.begin();
                    for _ in 0..rng.random_range(1..4u32) {
                        let (rel, t) = random_op(&mut rng);
                        if rng.random_range(0..3u32) == 0 {
                            s.stage_delete(rel, t).unwrap();
                        } else {
                            s.stage_insert(rel, t).unwrap();
                        }
                    }
                    if rng.random_range(0..5u32) == 0 {
                        s.abort();
                    } else {
                        s.commit();
                    }
                }
            });
        }
        for _ in 0..2 {
            let cat = cat.clone();
            let sigma = &sigma;
            scope.spawn(move || {
                for _ in 0..40 {
                    let snap = cat.snapshot();
                    let db = snap.to_database();
                    let viols = full_violations(&db, sigma).unwrap();
                    let health = snap.health();
                    assert_eq!(health.len(), sigma.len());
                    for (i, h) in health.iter().enumerate() {
                        assert_eq!(h.dep, sigma[i], "health is reported in Σ order");
                        let expect = viols
                            .iter()
                            .filter(|v| match v {
                                ViolationKey::Fd { dep, .. } | ViolationKey::Ind { dep, .. } => {
                                    *dep == i
                                }
                            })
                            .count() as u64;
                        assert_eq!(
                            h.violating,
                            expect,
                            "{} violating count diverged at gen {}",
                            h.dep,
                            snap.generation()
                        );
                        assert_eq!(
                            h.tracked,
                            tracked_oracle(&db, &sigma[i]),
                            "{} tracked count diverged at gen {}",
                            h.dep,
                            snap.generation()
                        );
                    }
                }
            });
        }
    });
}

/// Aborts are always invisible: with every session aborting, the catalog
/// never leaves its seeded state no matter how many threads hammer it.
#[test]
fn all_abort_storm_leaves_the_catalog_untouched() {
    let (schema, sigma, cat) = referential_catalog();
    let base = base_database(&schema, 8, 4);
    cat.seed(&base).unwrap();
    let seeded_gen = cat.generation();

    thread::scope(|scope| {
        for tid in 0..8u64 {
            let cat = cat.clone();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xAB_0127 + tid);
                for _ in 0..50 {
                    let mut s = cat.begin();
                    for _ in 0..rng.random_range(1..5u32) {
                        let (rel, t) = random_op(&mut rng);
                        s.stage_insert(rel, t).unwrap();
                    }
                    s.abort();
                }
            });
        }
    });

    assert_eq!(
        cat.generation(),
        seeded_gen,
        "aborts must not bump the generation"
    );
    let snap = cat.snapshot();
    assert_eq!(snap.to_database(), base);
    assert_eq!(snap.violations(), full_violations(&base, &sigma).unwrap());
}

proptest! {
    /// Contract 2: a snapshot taken while a session holds staged,
    /// uncommitted operations never observes them — staged inserts are
    /// invisible, staged deletes leave their rows visible, and the
    /// snapshot's row count and violations are exactly the committed
    /// state's. After an abort the catalog is bit-for-bit the base.
    #[test]
    fn snapshot_reads_never_observe_uncommitted_rows(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (schema, _sigma, cat) = referential_catalog();
        let base = base_database(&schema, 2 + rng.random_range(0..6u32), 1 + rng.random_range(0..3u32));
        cat.seed(&base).unwrap();
        let before = cat.snapshot();

        let mut s = cat.begin();
        // Staged inserts use a value universe ("x…") disjoint from the
        // base, so "invisible" is checkable row by row.
        let mut fresh: Vec<Tuple> = Vec::new();
        for i in 0..1 + rng.random_range(0..4u32) {
            let t = Tuple::strs(&[&format!("x{i}"), &format!("d{}", rng.random_range(0..6u32))]);
            s.stage_insert("EMP", t.clone()).unwrap();
            fresh.push(t);
        }
        // And one staged delete of a base row that must stay visible.
        let victim = Tuple::strs(&["e0", "d0"]);
        s.stage_delete("EMP", victim.clone()).unwrap();

        let during = cat.snapshot();
        let emp = RelName::new("EMP");
        for t in &fresh {
            prop_assert!(!during.contains(&emp, t).unwrap(), "uncommitted insert visible: {t}");
        }
        prop_assert!(during.contains(&emp, &victim).unwrap(), "uncommitted delete already applied");
        prop_assert_eq!(during.total_rows(), before.total_rows());
        prop_assert_eq!(during.violations(), before.violations());

        s.abort();
        prop_assert_eq!(cat.snapshot().to_database(), base);
    }
}
