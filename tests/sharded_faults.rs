//! Fault-injection tests for the sharded discovery harness: each
//! scenario plants a deterministic [`FaultPlan`] in every worker (only
//! the worker that draws the targeted shard at attempt 0 fires it, so
//! exactly one fault occurs regardless of scheduling), then requires the
//! run to converge to the byte-identical local cover *through the
//! recovery path*, asserted via the coordinator's [`ShardStats`].
//!
//! * **kill** — the worker dies mid-shard without reporting; the dropped
//!   connection (or heartbeat timeout) requeues the shard.
//! * **stall** — the worker goes silent past the heartbeat timeout; the
//!   shard is reassigned, and the latecomer's eventual completion is
//!   rejected as stale rather than merged twice.
//! * **corrupt** — the worker publishes a run, then flips one byte of
//!   it; manifest verification rejects the completion and the shard is
//!   re-run, never silently merged.

use depkit_core::column::ColumnStore;
use depkit_core::{Database, DatabaseSchema};
use depkit_serve::shard::{Coordinator, FaultPlan, ShardConfig, ShardStats};
use depkit_solver::discover::{discover_with_config, Discovery, DiscoveryConfig};
use std::time::Duration;

/// The running example: two relations with real FDs, INDs, and a
/// nontrivial *binary* IND (`EMP[DEPT, MGR] ⊆ DEPT[DNO, HEAD]`), so both
/// shard shapes — profile columns and n-ary refutation passes — carry
/// work in every scenario.
fn worked_example() -> Database {
    let schema = DatabaseSchema::parse(&["EMP(NAME, DEPT, MGR)", "DEPT(DNO, HEAD)"]).unwrap();
    let mut db = Database::empty(schema);
    db.insert_str(
        "EMP",
        &[
            &["hilbert", "math", "klein"],
            &["noether", "math", "klein"],
            &["curie", "phys", "curie"],
        ],
    )
    .unwrap();
    db.insert_str("DEPT", &[&["math", "klein"], &["phys", "curie"]])
        .unwrap();
    db
}

/// Timeouts tightened so stall recovery happens in test time.
fn fast_cfg() -> ShardConfig {
    ShardConfig {
        chunk_ids: 16,
        heartbeat_interval: Duration::from_millis(40),
        heartbeat_timeout: Duration::from_millis(250),
        progress_timeout: Duration::from_secs(20),
        ..ShardConfig::default()
    }
}

/// Run sharded discovery with `workers` thread-backed workers, every one
/// of them carrying `fault`. Returns the discovery, the stats snapshot
/// at completion, and the final stats after all workers drained (a
/// stalled worker reports — and is counted stale — *after* the run
/// finishes without it).
fn run_with_fault(
    db: &Database,
    workers: usize,
    cfg: ShardConfig,
    fault: &str,
) -> (Discovery, ShardStats, ShardStats) {
    let fault = FaultPlan::parse(fault).unwrap();
    let coordinator = Coordinator::bind("127.0.0.1:0", cfg).unwrap();
    let addr = coordinator.local_addr().to_string();
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let addr = addr.clone();
            let db = db.clone();
            let fault = fault.clone();
            std::thread::spawn(move || {
                let schema = db.schema().clone();
                let store = ColumnStore::new(&db);
                depkit_serve::run_worker(&addr, &schema, &store, &fault)
            })
        })
        .collect();
    let schema = db.schema().clone();
    let store = ColumnStore::new(db);
    let (found, at_completion) = coordinator
        .run(&schema, &store, &DiscoveryConfig::default(), workers)
        .unwrap();
    for h in handles {
        h.join().unwrap().unwrap();
    }
    let drained = coordinator.stats();
    coordinator.shutdown().unwrap();
    (found, at_completion, drained)
}

fn assert_identical(local: &Discovery, sharded: &Discovery, scenario: &str) {
    assert_eq!(local.raw, sharded.raw, "{scenario}: raw deps diverged");
    assert_eq!(local.cover, sharded.cover, "{scenario}: cover diverged");
    assert_eq!(local.stats, sharded.stats, "{scenario}: stats diverged");
}

#[test]
fn killed_worker_mid_profile_shard_retries_and_completes_identically() {
    let db = worked_example();
    let local = discover_with_config(&db, &DiscoveryConfig::default());
    let (sharded, stats, _) = run_with_fault(&db, 2, fast_cfg(), "kill:profile:0");
    assert_identical(&local, &sharded, "kill:profile");
    assert_eq!(stats.completed, stats.shards, "every shard must complete");
    assert!(
        stats.retried + stats.reassigned >= 1,
        "the kill must surface as a disconnect requeue or a timeout reassignment: {stats:?}"
    );
}

#[test]
fn killed_worker_mid_refute_shard_retries_and_completes_identically() {
    let db = worked_example();
    let local = discover_with_config(&db, &DiscoveryConfig::default());
    let (sharded, stats, _) = run_with_fault(&db, 2, fast_cfg(), "kill:refute:0");
    assert_identical(&local, &sharded, "kill:refute");
    assert_eq!(stats.completed, stats.shards);
    assert!(
        stats.retried + stats.reassigned >= 1,
        "the refute-phase kill must exercise the retry path: {stats:?}"
    );
}

#[test]
fn stalled_worker_is_reassigned_and_its_late_result_is_rejected_not_merged() {
    let db = worked_example();
    let local = discover_with_config(&db, &DiscoveryConfig::default());
    // Stall well past the 250ms heartbeat timeout; the staller then
    // finishes its shard and reports into a world that moved on.
    let (sharded, stats, drained) = run_with_fault(&db, 2, fast_cfg(), "stall:profile:1:1200");
    assert_identical(&local, &sharded, "stall:profile");
    assert_eq!(
        stats.completed, stats.shards,
        "each shard completed exactly once"
    );
    assert!(
        stats.reassigned >= 1,
        "the stall must trip the heartbeat timeout: {stats:?}"
    );
    assert!(
        drained.stale_results >= 1,
        "the staller's late completion must be rejected as stale, not merged: {drained:?}"
    );
    // Stale rejection is the no-duplicate guarantee: accepted completions
    // still number exactly one per shard.
    assert_eq!(drained.completed, drained.shards);
}

#[test]
fn corrupted_published_run_is_checksum_rejected_and_the_shard_rerun() {
    let db = worked_example();
    let local = discover_with_config(&db, &DiscoveryConfig::default());
    let (sharded, stats, _) = run_with_fault(&db, 2, fast_cfg(), "corrupt:profile:2");
    assert_identical(&local, &sharded, "corrupt:profile");
    assert_eq!(stats.completed, stats.shards);
    assert_eq!(
        stats.checksum_rejected, 1,
        "exactly one completion carries the flipped byte: {stats:?}"
    );
    assert!(
        stats.retried >= 1,
        "the rejected shard must be re-run: {stats:?}"
    );
}

#[test]
fn every_fault_scenario_converges_on_a_multi_fault_plan() {
    // All three faults in one run, on distinct shards: the harness
    // recovers from each independently and still lands on the local
    // cover byte for byte.
    let db = worked_example();
    let local = discover_with_config(&db, &DiscoveryConfig::default());
    let (sharded, stats, drained) = run_with_fault(
        &db,
        3,
        fast_cfg(),
        "kill:profile:0;stall:profile:3:1200;corrupt:profile:4",
    );
    assert_identical(&local, &sharded, "multi-fault");
    assert_eq!(stats.completed, stats.shards);
    assert_eq!(stats.checksum_rejected, 1, "{stats:?}");
    assert!(stats.reassigned >= 1, "{stats:?}");
    assert!(stats.retried >= 2, "{stats:?}");
    assert_eq!(drained.completed, drained.shards);
}
