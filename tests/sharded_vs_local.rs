//! Differential suite for cross-process sharded discovery: on every
//! fixture under `tests/data/` (and on randomly planted Σ), the sharded
//! pipeline at workers ∈ {2, 4, 8} must produce the same `raw`, `cover`,
//! and `DiscoveryStats` — byte for byte — as the in-process pipeline,
//! both unbounded (in-memory) and memory-budgeted (spilled).
//!
//! Workers here are threads speaking the real TCP protocol, each
//! re-parsing the fixture text and interning its **own**
//! [`ColumnStore`] — exactly what a `depkit shard-worker` process does
//! (the process-spawning deployment itself is covered by the
//! `depkit-cli` integration tests and the CI shard-smoke job).

use depkit_core::column::ColumnStore;
use depkit_core::generate::{
    random_mixed_set, random_satisfying_database, random_schema, Rng, SchemaConfig,
};
use depkit_core::parser::parse_scheme;
use depkit_core::{Database, DatabaseSchema, RelName, Tuple, Value};
use depkit_serve::shard::{Coordinator, FaultPlan, ShardConfig};
use depkit_solver::discover::{discover_with_config, Discovery, DiscoveryConfig};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn data_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data")
}

/// Parse the `schema`/`row` fixture subset of the CLI spec format.
fn load_database(text: &str) -> Database {
    let mut schemes = Vec::new();
    let mut rows: Vec<(String, Vec<Value>)> = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (keyword, rest) = line
            .split_once(char::is_whitespace)
            .map(|(k, r)| (k, r.trim()))
            .unwrap_or((line, ""));
        match keyword {
            "schema" => schemes.push(parse_scheme(rest).unwrap()),
            "row" => {
                let mut parts = rest.split_whitespace();
                let rel = parts.next().expect("row needs a relation").to_string();
                let values = parts
                    .map(|p| {
                        p.parse::<i64>()
                            .map(Value::Int)
                            .unwrap_or_else(|_| Value::str(p))
                    })
                    .collect();
                rows.push((rel, values));
            }
            // `dep` lines carry the declared constraints; discovery
            // differentials only need the data.
            "dep" => {}
            other => panic!("fixture directive `{other}` not supported"),
        }
    }
    let mut db = Database::empty(DatabaseSchema::new(schemes).unwrap());
    for (rel, values) in rows {
        db.insert(&RelName::new(&rel), Tuple::new(values)).unwrap();
    }
    db
}

/// Run sharded discovery over `workers` thread-backed workers, each
/// building its own store from an independent copy of `db` — the
/// deterministic-interning contract the process deployment relies on.
fn discover_sharded(db: &Database, workers: usize, config: &DiscoveryConfig) -> Discovery {
    let shard_cfg = ShardConfig {
        chunk_ids: 64, // small runs so even tiny fixtures produce several
        ..ShardConfig::default()
    };
    let coordinator = Coordinator::bind("127.0.0.1:0", shard_cfg).unwrap();
    let addr = coordinator.local_addr().to_string();
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let addr = addr.clone();
            let db = db.clone();
            std::thread::spawn(move || {
                let schema = db.schema().clone();
                let store = ColumnStore::new(&db);
                depkit_serve::run_worker(&addr, &schema, &store, &FaultPlan::none())
            })
        })
        .collect();
    let schema = db.schema().clone();
    let store = ColumnStore::new(db);
    let (found, stats) = coordinator.run(&schema, &store, config, workers).unwrap();
    for h in handles {
        h.join().unwrap().unwrap();
    }
    coordinator.shutdown().unwrap();
    assert_eq!(
        stats.completed, stats.shards,
        "clean run completes every shard once"
    );
    assert_eq!(stats.retried, 0, "clean run never retries");
    found
}

/// The four-way differential: in-memory == spilled == sharded at each
/// worker count, on raw deps, cover, and stats alike.
fn assert_all_pipelines_agree(db: &Database, context: &str) {
    let config = DiscoveryConfig::default();
    let local = discover_with_config(db, &config);
    let spilled_config = DiscoveryConfig {
        memory_budget: 1, // force every column through the spill path
        ..DiscoveryConfig::default()
    };
    let spilled = discover_with_config(db, &spilled_config);
    assert_eq!(local.raw, spilled.raw, "{context}: spilled raw diverged");
    assert_eq!(
        local.cover, spilled.cover,
        "{context}: spilled cover diverged"
    );
    assert_eq!(
        local.stats, spilled.stats,
        "{context}: spilled stats diverged"
    );
    for workers in [2, 4, 8] {
        let sharded = discover_sharded(db, workers, &config);
        assert_eq!(
            local.raw, sharded.raw,
            "{context}: sharded raw diverged at workers={workers}"
        );
        assert_eq!(
            local.cover, sharded.cover,
            "{context}: sharded cover diverged at workers={workers}"
        );
        assert_eq!(
            local.stats, sharded.stats,
            "{context}: sharded stats diverged at workers={workers}"
        );
    }
}

/// The tolerance-zero matrix of the approximate-discovery tentpole:
/// `max_error = 0.0` must be byte-identical to the pre-tolerance exact
/// pipeline at every point of threads ∈ {1, N} × {in-memory,
/// forced-spill} × workers ∈ {0, 3} — same raw, cover, and stats, and no
/// scored entries anywhere (scoring is an approximate-mode artifact).
#[test]
fn zero_tolerance_matrix_is_byte_identical_to_exact() {
    let text = std::fs::read_to_string(data_dir().join("employees.dep")).unwrap();
    let db = load_database(&text);
    let exact = discover_with_config(&db, &DiscoveryConfig::default());
    assert!(exact.scored.is_empty(), "exact discovery never scores");
    for threads in [1, 0] {
        for budget in [0usize, 1] {
            let config = DiscoveryConfig {
                threads,
                memory_budget: budget,
                max_error: 0.0,
                ..DiscoveryConfig::default()
            };
            let ctx = format!("threads={threads} budget={budget}");
            let local = discover_with_config(&db, &config);
            assert_eq!(exact.raw, local.raw, "{ctx} workers=0: raw diverged");
            assert_eq!(exact.cover, local.cover, "{ctx} workers=0: cover diverged");
            assert_eq!(exact.stats, local.stats, "{ctx} workers=0: stats diverged");
            assert!(local.scored.is_empty(), "{ctx} workers=0: scored nonempty");
            let sharded = discover_sharded(&db, 3, &config);
            assert_eq!(exact.raw, sharded.raw, "{ctx} workers=3: raw diverged");
            assert_eq!(
                exact.cover, sharded.cover,
                "{ctx} workers=3: cover diverged"
            );
            assert_eq!(
                exact.stats, sharded.stats,
                "{ctx} workers=3: stats diverged"
            );
            assert!(
                sharded.scored.is_empty(),
                "{ctx} workers=3: scored nonempty"
            );
        }
    }
}

/// Approximate discovery must report the *same confidences* everywhere:
/// per-candidate miss counts summed over key-range shards across real
/// socket workers equal the single-store counts, spilled or not.
#[test]
fn approximate_confidences_agree_across_the_matrix() {
    let text = std::fs::read_to_string(data_dir().join("employees.dep")).unwrap();
    let mut db = load_database(&text);
    // Dirty the reference data: one employee in an unknown department
    // and a second manager for dept 10, so both an IND and an FD are
    // only approximately satisfied.
    db.insert(&RelName::new("EMP"), Tuple::ints(&[4, 30]))
        .unwrap();
    db.insert(&RelName::new("DEPT"), Tuple::ints(&[10, 101]))
        .unwrap();
    let config = DiscoveryConfig {
        max_error: 0.4,
        ..DiscoveryConfig::default()
    };
    let local = discover_with_config(&db, &config);
    assert!(
        local.scored.iter().any(|s| s.misses > 0),
        "the planted dirt must surface as scored misses: {:?}",
        local.scored
    );
    for (threads, budget) in [(1, 0usize), (0, 1)] {
        let c = DiscoveryConfig {
            threads,
            memory_budget: budget,
            ..config.clone()
        };
        let other = discover_with_config(&db, &c);
        assert_eq!(
            local.scored, other.scored,
            "threads={threads} budget={budget}"
        );
        assert_eq!(local.raw, other.raw);
        assert_eq!(local.cover, other.cover);
    }
    for workers in [2, 3] {
        let sharded = discover_sharded(&db, workers, &config);
        assert_eq!(local.scored, sharded.scored, "workers={workers}");
        assert_eq!(local.raw, sharded.raw, "workers={workers}");
        assert_eq!(local.cover, sharded.cover, "workers={workers}");
        assert_eq!(local.stats, sharded.stats, "workers={workers}");
    }
}

#[test]
fn sharded_matches_local_on_every_fixture() {
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(data_dir())
        .unwrap()
        .filter_map(|e| {
            let path = e.unwrap().path();
            (path.extension().is_some_and(|x| x == "dep")).then_some(path)
        })
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 5,
        "fixture corpus went missing: {fixtures:?}"
    );
    for fixture in fixtures {
        let text = std::fs::read_to_string(&fixture).unwrap();
        let db = load_database(&text);
        assert_all_pipelines_agree(&db, &fixture.display().to_string());
    }
}

proptest! {
    /// Planted-Σ differential: repair a random database until a random
    /// set of FDs and INDs holds by construction, then require the
    /// sharded pipeline to agree with the local one on it exactly.
    #[test]
    fn sharded_matches_local_on_planted_sigma(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        // Arity 2, like the planted-cover proptest: wider schemas grow
        // accidental IND cliques that only slow minimization down, on
        // both sides of the differential alike.
        let schema = random_schema(&mut rng, &SchemaConfig {
            relations: 2, min_arity: 2, max_arity: 2,
        });
        let planted = random_mixed_set(&mut rng, &schema, 2, 2);
        let db = random_satisfying_database(&mut rng, &schema, &planted, 8, 4);
        let config = DiscoveryConfig::default();
        let local = discover_with_config(&db, &config);
        for d in &planted {
            prop_assert!(
                depkit_solver::discover::implied_by(&local.cover, d),
                "planted {} not implied by the local cover", d
            );
        }
        let sharded = discover_sharded(&db, 2, &config);
        prop_assert_eq!(&local.raw, &sharded.raw);
        prop_assert_eq!(&local.cover, &sharded.cover);
        prop_assert_eq!(&local.stats, &sharded.stats);
    }
}
