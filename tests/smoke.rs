//! Workspace smoke test: the paper's headline results, asserted end-to-end
//! across crate boundaries. Each test is a cross-check between at least two
//! independent engines, so a regression in any layer of the stack trips it.

use depkit_axiom::families::theorem44::Theorem44;
use depkit_bench::typed_chain;
use depkit_chase::ind_chase::ind_chase;
use depkit_lba::{reduce, zoo};
use depkit_perm::{landau_pair, Perm};
use depkit_solver::ind::IndSolver;

/// Theorem 3.1: the syntactic worklist search (rules IND1–IND3) and the
/// semantic Rule (*) chase agree on a typed chain — and both also agree
/// with the checked proof object the prover emits.
#[test]
fn ind_worklist_agrees_with_chase_on_typed_chain() {
    let (schema, sigma, target) = typed_chain(8, 3);

    let solver = IndSolver::new(&sigma);
    assert!(solver.implies(&target), "worklist: chain end is implied");
    assert_eq!(
        solver.implies_typed(&target),
        Some(true),
        "typed fast path agrees"
    );

    let chase = ind_chase(&schema, &sigma, &target, 1_000_000).expect("within tuple cap");
    assert!(chase.implied, "Rule (*) chase: chain end is implied");

    let proof = depkit_axiom::proof::prove(&sigma, &target).expect("prover finds a derivation");
    assert!(proof.check(&sigma).is_ok(), "proof object checks");

    // A non-consequence is rejected by both procedures: reverse the chain.
    let back = depkit_core::Ind::new(
        target.rhs_rel.clone(),
        target.rhs_attrs.clone(),
        target.lhs_rel.clone(),
        target.lhs_attrs.clone(),
    )
    .expect("equal arity");
    assert!(!solver.implies(&back));
    assert!(
        !ind_chase(&schema, &sigma, &back, 1_000_000)
            .expect("within tuple cap")
            .implied
    );
}

/// Theorem 3.3: the LBA acceptance decider and the IND-implication image of
/// the reduction give the same verdict on machines with known behaviour.
#[test]
fn pspace_reduction_agrees_with_direct_decider() {
    let cases: [(_, &[usize], bool); 4] = [
        (zoo::parity(), &[2, 2], true),     // "11": even number of 1s
        (zoo::parity(), &[2, 1, 1], false), // "100": odd
        (zoo::all_zeros(), &[1, 1, 1], true),
        (zoo::never_accept(), &[1, 1], false),
    ];
    for (machine, input, expect) in cases {
        let direct = machine.accepts(input, 5_000_000).expect("within budget");
        assert_eq!(direct, expect, "direct decider on {input:?}");
        let red = reduce(&machine, input).expect("well-formed machine");
        let via_inds = IndSolver::new(&red.sigma).implies(&red.target);
        assert_eq!(direct, via_inds, "reduction image on {input:?}");
    }
}

/// Theorem 4.4: finite and unrestricted implication differ. The counting
/// engine derives the reversed IND and flipped FD over finite databases,
/// while the Figure 4.1/4.2 infinite witnesses satisfy Σ and violate them.
#[test]
fn finite_and_unrestricted_implication_separate() {
    let report = Theorem44::new().verify();
    assert!(report.all_verified(), "Theorem 4.4 report: {report:?}");
}

/// Section 3 lower bound: the Landau pair `(σ(γ), σ(δ))` is implied, and the
/// worklist visits at least `f(m) − 1` expressions to see it — the
/// superpolynomial step count the paper derives from Landau's function.
#[test]
fn landau_pair_lower_bound_holds() {
    for m in [4usize, 5, 6] {
        let (gen, target, f) = landau_pair(m);
        let solver = IndSolver::new(std::slice::from_ref(&gen));
        let (implied, stats) = solver.implies_with_stats(&target);
        assert!(implied, "σ(γ) ⊨ σ(δ) for m = {m}");
        let walk = stats.walk_length.expect("implied ⇒ walk") as u128;
        assert!(
            walk >= f,
            "m = {m}: walk of {walk} expressions is shorter than f(m) = {f}"
        );
    }
    // And the underlying arithmetic: f(6) = lcm-maximal order 6 (cycle 1·2·3
    // is beaten by 6 = lcm(2, 3) · 1? no — f(6) = 6 via a 6-cycle or 2+3+1).
    let (_, _, f6) = landau_pair(6);
    assert_eq!(f6, 6);
    assert_eq!(Perm::identity(3).order(), 1);
}
