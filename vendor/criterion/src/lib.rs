//! Offline stand-in for `criterion`, covering the API surface the `depkit`
//! benches use: `Criterion::benchmark_group`, `BenchmarkGroup::{throughput,
//! sample_size, bench_function, bench_with_input, finish}`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! It is a real (if minimal) harness, not a no-op: each benchmark is warmed
//! up, then timed over several sample batches, and a
//! `group/name/param  time: [median]` line is printed — with an
//! elements-per-second throughput figure when the bench declared
//! `Throughput::Elements`. There is no statistics engine, plotting, or
//! baseline comparison — swap in the real criterion via `Cargo.toml` when
//! crates.io access exists.
//!
//! Knobs:
//!
//! * `DEPKIT_BENCH_BUDGET_MS` — per-benchmark measurement budget
//!   (default 50).
//! * `--quick` (as a harness argument, i.e. `cargo bench -- --quick`) —
//!   clamp the budget to 10 ms for smoke runs, mirroring real criterion's
//!   flag of the same name.
//! * `DEPKIT_BENCH_JSON` — append one JSON object per benchmark
//!   (`{"name", "median_ns", "samples", "iterations", "elements"?}`) to
//!   the given path, for machine-readable perf trajectories (see the
//!   repo's `BENCH_BASELINE.json`).

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark measurement budget, honoring `DEPKIT_BENCH_BUDGET_MS` and
/// the `--quick` harness flag.
fn budget() -> Duration {
    let ms = std::env::var("DEPKIT_BENCH_BUDGET_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(50);
    let ms = if std::env::args().any(|a| a == "--quick") {
        ms.min(10)
    } else {
        ms
    };
    Duration::from_millis(ms)
}

#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), None, f);
        self
    }
}

/// Benchmark identifier: a function name plus a parameter rendered with
/// `Display`, shown as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Throughput annotation: makes the harness report elements (or bytes) per
/// second next to the per-iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Conversions accepted where criterion takes `impl IntoBenchmarkId`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

pub struct Bencher {
    /// Per-iteration nanoseconds of each measured sample batch.
    samples: Vec<f64>,
    /// Total measured iterations across all batches.
    iterations: u64,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm-up / calibration: one call, timed to size the batches but
        // excluded from the reported statistics (it runs cold).
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed();

        let remaining = budget().saturating_sub(first);
        // Total warm iterations: enough to fill the remaining budget,
        // capped so a mis-calibrated first call cannot run away; at least
        // one even when the warm-up exhausted the budget. Split into up to
        // 15 equal sample batches so a median can be taken.
        let per_iter = first.max(Duration::from_nanos(20));
        let total = (remaining.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;
        let batches = total.min(15);
        let batch = (total / batches).max(1);
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / batch as f64);
            self.iterations += batch;
        }
    }
}

/// Median of the recorded per-iteration sample means.
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        iterations: 0,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<50} (no iterations)");
        return;
    }
    let med = median(&mut b.samples);
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) if med > 0.0 => {
            format!("  thrpt: {}", fmt_rate(n as f64 / (med * 1e-9), "elem/s"))
        }
        Some(Throughput::Bytes(n)) if med > 0.0 => {
            format!("  thrpt: {}", fmt_rate(n as f64 / (med * 1e-9), "B/s"))
        }
        _ => String::new(),
    };
    println!(
        "{label:<50} time: {} ({} samples, {} iterations){thrpt}",
        fmt_ns(med),
        b.samples.len(),
        b.iterations,
    );
    if let Ok(path) = std::env::var("DEPKIT_BENCH_JSON") {
        if !path.is_empty() {
            write_json(&path, label, med, &b, throughput);
        }
    }
}

/// Append one line-delimited JSON record; errors are reported, not fatal.
fn write_json(
    path: &str,
    label: &str,
    median_ns: f64,
    b: &Bencher,
    throughput: Option<Throughput>,
) {
    let elements = match throughput {
        Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
        _ => String::new(),
    };
    let name: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"name\":\"{name}\",\"median_ns\":{median_ns:.1},\"samples\":{},\"iterations\":{}{elements}}}\n",
        b.samples.len(),
        b.iterations,
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("warning: DEPKIT_BENCH_JSON={path}: {e}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}")
    }
}

/// Build a function that runs each target against a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, &n| {
            ran = true;
            b.iter(|| black_box(n + 1))
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn median_of_samples() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    fn json_lines_are_appended() {
        let path = std::env::temp_dir().join(format!("depkit-bench-{}.json", std::process::id()));
        let b = Bencher {
            samples: vec![10.0, 20.0],
            iterations: 2,
        };
        write_json(
            path.to_str().unwrap(),
            "g/f/1",
            15.0,
            &b,
            Some(Throughput::Elements(8)),
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"name\":\"g/f/1\""));
        assert!(text.contains("\"median_ns\":15.0"));
        assert!(text.contains("\"elements\":8"));
        std::fs::remove_file(path).ok();
    }
}
