//! Offline stand-in for `criterion`, covering the API surface the `depkit`
//! benches use: `Criterion::benchmark_group`, `BenchmarkGroup::{throughput,
//! sample_size, bench_function, bench_with_input, finish}`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! It is a real (if minimal) harness, not a no-op: each benchmark is warmed
//! up, then timed over an adaptive number of iterations, and a
//! `group/name/param  time: [..]` line is printed. There is no statistics
//! engine, plotting, or baseline comparison — swap in the real criterion
//! via `Cargo.toml` when crates.io access exists. Honors
//! `DEPKIT_BENCH_BUDGET_MS` (per-benchmark measurement budget, default 50).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark measurement budget.
fn budget() -> Duration {
    let ms = std::env::var("DEPKIT_BENCH_BUDGET_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(50);
    Duration::from_millis(ms)
}

#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), f);
        self
    }
}

/// Benchmark identifier: a function name plus a parameter rendered with
/// `Display`, shown as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Throughput annotation; recorded for API compatibility, echoed in output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Conversions accepted where criterion takes `impl IntoBenchmarkId`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

pub struct Bencher {
    /// Total time spent inside `iter` closures and how many closure calls
    /// that covered, accumulated across `iter` invocations.
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm-up / calibration: one call, timed to size the batch but
        // excluded from the reported statistics (it runs cold).
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed();

        let remaining = budget().saturating_sub(first);
        // Warm iterations to record: enough to fill the remaining budget,
        // capped so a mis-calibrated first call cannot run away; at least
        // one even when the warm-up exhausted the budget.
        let per_iter = first.max(Duration::from_nanos(20));
        let n = (remaining.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iterations += n;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut b);
    if b.iterations == 0 {
        println!("{label:<50} (no iterations)");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iterations as f64;
    println!(
        "{label:<50} time: {} ({} iterations)",
        fmt_ns(ns),
        b.iterations
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Build a function that runs each target against a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, &n| {
            ran = true;
            b.iter(|| black_box(n + 1))
        });
        group.finish();
        assert!(ran);
    }
}
