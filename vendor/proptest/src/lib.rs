//! Offline stand-in for `proptest`, covering the surface the workspace's
//! property tests use: the `proptest! { #[test] fn name(x in strategy) {..} }`
//! macro, `prop_assert!` / `prop_assert_eq!`, `any::<T>()`, and integer-range
//! strategies.
//!
//! Differences from the real proptest, by design:
//! * **Deterministic**: cases are generated from a fixed seed sequence, so
//!   CI runs are reproducible (the real proptest randomizes and persists
//!   regressions). Set `DEPKIT_PROPTEST_CASES` to change the case count
//!   (default 64).
//! * **No shrinking**: a failing case reports its index and message only.
//!
//! Swap in the real proptest via `Cargo.toml` when crates.io access exists.

use std::fmt;
use std::ops::Range;

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure: the property is false for this input.
    Fail(String),
    /// The input was rejected (filtered out), not a failure.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Case-generation source: wraps the SplitMix64 `StdRng` from the `rand`
/// stub (mirroring how the real proptest layers on `rand`).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        use rand::SeedableRng as _;
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore as _;
        self.inner.next_u64()
    }
}

/// A value generator. The stub samples directly (no shrink trees).
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain: `any::<u64>()`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Compute the span in the same-width unsigned type: a signed
                // subtraction can overflow $t, and widening it directly to
                // u128 would sign-extend the wrapped result.
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u128;
                let offset = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span) as $u as $t;
                self.start.wrapping_add(offset)
            }
        }
    )*};
}

impl_range_strategy!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize, i128 => u128
);

/// Number of cases per property (default 64; override with
/// `DEPKIT_PROPTEST_CASES`).
pub fn case_count() -> u32 {
    std::env::var("DEPKIT_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Drive one property through `case_count()` deterministic cases, panicking
/// on the first `Fail` (rejections are skipped, as in real proptest).
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let n = case_count();
    for i in 0..n {
        // Decorrelate consecutive cases: hash the case index into a seed.
        let mut rng =
            TestRng::new(0xD1B5_4A32_D192_ED03 ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match case(&mut rng) {
            Ok(()) | Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {i}/{n}: {msg}");
            }
        }
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fail the current case unless the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({}:{}): left = {:?}, right = {:?}",
                stringify!($lhs),
                stringify!($rhs),
                file!(),
                line!(),
                lhs,
                rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({}:{}): left = {:?}, right = {:?}: {}",
                stringify!($lhs),
                stringify!($rhs),
                file!(),
                line!(),
                lhs,
                rhs,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fail the current case if the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} ({}:{}): both = {:?}",
                stringify!($lhs),
                stringify!($rhs),
                file!(),
                line!(),
                lhs
            )));
        }
    }};
}

/// Declare deterministic property tests:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in any::<u64>(), b in 0u64..100) {
///         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__depkit_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), __depkit_rng);)*
                    (move || -> $crate::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Strategy,
        TestCaseError, TestCaseResult, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -5i128..6) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..6).contains(&y));
        }

        #[test]
        fn wide_signed_ranges_respect_bounds(x in -100i8..100, y in -30000i16..30000) {
            prop_assert!((-100..100).contains(&x));
            prop_assert!((-30000..30000).contains(&y));
        }

        #[test]
        fn any_u64_is_deterministic(_x in any::<u64>()) {
            prop_assert_eq!(1 + 1, 2);
        }

        #[test]
        fn early_ok_return_is_allowed(x in 0u32..10) {
            if x > 100 { return Ok(()); }
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        crate::run_cases("always_fails", |_rng| Err(TestCaseError::fail("nope")));
    }
}
