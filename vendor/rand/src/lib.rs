//! Offline stand-in for the `rand` crate, covering exactly the surface the
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `RngExt::random_range` over half-open integer ranges.
//!
//! `StdRng` here is SplitMix64 — *not* the real `rand` StdRng — so streams
//! differ from upstream, but all workspace uses are "seeded arbitrary
//! stream" uses where only determinism-in-the-seed matters.

use std::ops::Range;

/// Minimal core trait: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, as an extension trait (mirrors `rand::Rng::random_range`).
pub trait RngExt: RngCore {
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }
}

impl<R: RngCore> RngExt for R {}

/// Integer types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in random_range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add((rng.next_u64() % span) as Self)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator (Steele–Lea–Flood 2014): tiny, fast, and good
    /// enough for test-instance generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt as _, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..50), b.random_range(0usize..50));
        }
    }

    #[test]
    fn stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
        }
    }
}
