//! Offline stand-in for `serde`.
//!
//! Nothing in the workspace serializes at runtime yet — the derives exist so
//! constraint catalogs *can* round-trip once the real serde is available.
//! Until then: `Serialize`/`Deserialize` are empty marker traits with
//! blanket impls, and the derive macros (re-exported from the stub
//! `serde_derive`) emit no code while still accepting `#[serde(...)]`
//! helper attributes. Trait bounds like `T: Serialize` therefore compile
//! and are trivially satisfied.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
