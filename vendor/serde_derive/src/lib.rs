//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, so this proc-macro crate
//! exists only to make `#[derive(Serialize, Deserialize)]` and the
//! `#[serde(...)]` helper attributes compile. The companion `serde` stub
//! crate provides blanket impls of the (empty) `Serialize`/`Deserialize`
//! traits, so the derives themselves emit no code. Swapping in the real
//! serde is a `Cargo.toml`-only change.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
